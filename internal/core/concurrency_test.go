package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/power"
	"senseaid/internal/sensors"
	"senseaid/internal/simclock"
)

// Regression: per-shard counters both restart at task-1, so two shards
// mint same-numbered tasks. The region prefix is what keeps the IDs —
// and therefore data routing and deletion — unambiguous.
func TestSameNumberedTasksAcrossShards(t *testing.T) {
	s, d := newSharded(t)
	westPos := geo.UniversityGym
	eastPos := geo.Offset(geo.UniversityGym, 0, 5000)

	wdev := freshDevice("wdev")
	wdev.Position = westPos
	edev := freshDevice("edev")
	edev.Position = eastPos
	for _, dev := range []DeviceState{wdev, edev} {
		if err := s.RegisterDevice(dev); err != nil {
			t.Fatalf("RegisterDevice(%s): %v", dev.ID, err)
		}
	}

	var mu sync.Mutex
	got := map[TaskID][]string{} // task -> devices whose readings reached its sink
	sinkFor := func(want TaskID) DataSink {
		return func(id TaskID, dev string, _ sensors.Reading) {
			mu.Lock()
			defer mu.Unlock()
			got[want] = append(got[want], dev)
			if id != want {
				t.Errorf("sink for %s got reading tagged %s", want, id)
			}
		}
	}

	submit := func(center geo.Point, want TaskID) TaskID {
		tk := validTask()
		tk.Area = geo.Circle{Center: center, RadiusM: 400}
		tk.SpatialDensity = 1
		id, err := s.SubmitTask(tk, simclock.Epoch, sinkFor(want))
		if err != nil {
			t.Fatalf("SubmitTask: %v", err)
		}
		return id
	}
	idW := submit(westPos, "west/task-1")
	idE := submit(eastPos, "east/task-1")
	if idW != "west/task-1" || idE != "east/task-1" {
		t.Fatalf("IDs = %s / %s, want west/task-1 / east/task-1", idW, idE)
	}

	s.ProcessDue(simclock.Epoch)
	d.mu.Lock()
	reqFor := map[string]string{} // device -> request ID
	for _, c := range d.calls {
		reqFor[c.dev.ID] = c.req.ID()
	}
	d.mu.Unlock()
	if len(reqFor) != 2 {
		t.Fatalf("dispatched to %d devices, want 2 (%v)", len(reqFor), reqFor)
	}

	// Both request IDs end "#1"; only the region prefix distinguishes
	// them. Each reading must land in its own task's sink.
	for dev, pos := range map[string]geo.Point{"wdev": westPos, "edev": eastPos} {
		r := sensors.Reading{Sensor: sensors.Barometer, At: simclock.Epoch.Add(time.Second), Where: pos}
		if err := s.ReceiveData(reqFor[dev], dev, r, r.At); err != nil {
			t.Fatalf("ReceiveData(%s, %s): %v", reqFor[dev], dev, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got[idW]) != 1 || got[idW][0] != "wdev" {
		t.Fatalf("west sink saw %v, want [wdev]", got[idW])
	}
	if len(got[idE]) != 1 || got[idE][0] != "edev" {
		t.Fatalf("east sink saw %v, want [edev]", got[idE])
	}

	// Deleting the west task-1 must not disturb the east task-1.
	if err := s.DeleteTask(idW); err != nil {
		t.Fatalf("DeleteTask(%s): %v", idW, err)
	}
	if err := s.UpdateTaskParams(idE, simclock.Epoch, func(tk *Task) { tk.SpatialDensity = 2 }); err != nil {
		t.Fatalf("east task gone after deleting west task: %v", err)
	}
	if n := s.TaskCount(); n != 1 {
		t.Fatalf("TaskCount = %d, want 1", n)
	}
}

// Regression: DeleteTask must drop the task's routing entry, or task
// churn grows the index without bound.
func TestDeleteTaskDropsRoutingEntry(t *testing.T) {
	s, _ := newSharded(t)
	for i := 0; i < 3; i++ {
		tk := validTask()
		tk.Area = geo.Circle{Center: geo.UniversityGym, RadiusM: 400}
		id, err := s.SubmitTask(tk, simclock.Epoch, func(TaskID, string, sensors.Reading) {})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.DeleteTask(id); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.RLock()
	n := len(s.taskHome)
	s.mu.RUnlock()
	if n != 0 {
		t.Fatalf("taskHome holds %d entries after delete, want 0", n)
	}
}

// Regression: update_preferences must change only the budget. The old
// path re-registered the device, which silently rehabilitated devices
// the scheduler had marked unresponsive and zeroed fairness counters.
func TestUpdateBudgetPreservesLiveness(t *testing.T) {
	store := NewDeviceStore()
	if err := store.Register(freshDevice("d1")); err != nil {
		t.Fatal(err)
	}
	store.SetResponsive("d1", false)
	store.NoteSelected("d1")
	store.NoteEnergy("d1", 3)
	store.SetReliability("d1", 0.5)

	b := power.DefaultBudget()
	b.CriticalBatteryPct = 35
	if err := store.UpdateBudget("d1", b); err != nil {
		t.Fatalf("UpdateBudget: %v", err)
	}
	rec, ok := store.Get("d1")
	if !ok {
		t.Fatal("device gone")
	}
	if rec.Budget != b {
		t.Fatalf("budget not applied: %+v", rec.Budget)
	}
	if rec.Responsive {
		t.Fatal("budget update rehabilitated an unresponsive device")
	}
	if rec.TimesUsed != 1 || rec.EnergySpentJ != 3 {
		t.Fatalf("fairness counters reset: used=%d energy=%v", rec.TimesUsed, rec.EnergySpentJ)
	}
	if rec.Reliability != 0.5 {
		t.Fatalf("reliability reset: %v", rec.Reliability)
	}

	bad := b
	bad.CriticalBatteryPct = -1
	if err := store.UpdateBudget("d1", bad); err == nil {
		t.Fatal("invalid budget accepted")
	}
	if err := store.UpdateBudget("ghost", b); err == nil {
		t.Fatal("unknown device accepted")
	}
}

// The same invariant through the Orchestrator face of both topologies.
func TestUpdateDevicePrefsPreservesLiveness(t *testing.T) {
	single, _ := newTestServer(t)
	sharded, _ := newSharded(t)
	cases := []struct {
		name  string
		orch  Orchestrator
		store func() *DeviceStore
		pos   geo.Point
	}{
		{"single", single, single.Devices, geo.CSDepartment},
		{"sharded", sharded, func() *DeviceStore {
			sh, _, err := sharded.Shard(0)
			if err != nil {
				t.Fatal(err)
			}
			return sh.Devices()
		}, geo.UniversityGym},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := freshDevice("d1")
			d.Position = c.pos
			if err := c.orch.RegisterDevice(d); err != nil {
				t.Fatal(err)
			}
			c.store().SetResponsive("d1", false)
			b := power.DefaultBudget()
			b.CriticalBatteryPct = 42
			if err := c.orch.UpdateDevicePrefs("d1", b); err != nil {
				t.Fatalf("UpdateDevicePrefs: %v", err)
			}
			rec, ok := c.store().Get("d1")
			if !ok || rec.Responsive || rec.Budget.CriticalBatteryPct != 42 {
				t.Fatalf("record = %+v ok=%v, want unresponsive with new budget", rec, ok)
			}
		})
	}
}

// Re-homing a device across shards must carry liveness state with it.
func TestRehomePreservesUnresponsiveness(t *testing.T) {
	s, _ := newSharded(t)
	d := freshDevice("mover")
	d.Position = geo.UniversityGym
	if err := s.RegisterDevice(d); err != nil {
		t.Fatal(err)
	}
	shard0, _, err := s.Shard(0)
	if err != nil {
		t.Fatal(err)
	}
	shard0.Devices().SetResponsive("mover", false)

	eastPos := geo.Offset(geo.UniversityGym, 0, 5000)
	if err := s.UpdateDeviceState("mover", eastPos, 50, simclock.Epoch.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	shard1, _, err := s.Shard(1)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := shard1.Devices().Get("mover")
	if !ok {
		t.Fatal("device missing from east shard")
	}
	if rec.Responsive {
		t.Fatal("crossing a region boundary rehabilitated an unresponsive device")
	}
}

// Hammer every Orchestrator method concurrently against both topologies.
// The assertions are weak on purpose — the test exists for the race
// detector, which turns any locking mistake into a failure.
func TestOrchestratorConcurrentUse(t *testing.T) {
	regions := campusRegions()
	positions := []geo.Point{regions[0].Area.Center, regions[1].Area.Center}

	build := map[string]func(t *testing.T) Orchestrator{
		"single": func(t *testing.T) Orchestrator {
			s, _ := newTestServer(t)
			return s
		},
		"sharded": func(t *testing.T) Orchestrator {
			s, _ := newSharded(t)
			return s
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			o := mk(t)
			var wg sync.WaitGroup    // finite mutator workers
			var loops sync.WaitGroup // scheduler/reader loops, stopped after mutators drain

			// Device workers: register, report state (moving between
			// regions, exercising sharded re-homing), tweak prefs, spend
			// energy, deregister.
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					id := fmt.Sprintf("dev-%d", w)
					for i := 0; i < 25; i++ {
						d := freshDevice(id)
						d.Position = positions[(w+i)%len(positions)]
						if err := o.RegisterDevice(d); err != nil {
							t.Errorf("RegisterDevice: %v", err)
							return
						}
						at := simclock.Epoch.Add(time.Duration(i) * time.Second)
						_ = o.UpdateDeviceState(id, positions[(w+i+1)%len(positions)], 80, at)
						b := power.DefaultBudget()
						b.CriticalBatteryPct = float64(10 + i%20)
						_ = o.UpdateDevicePrefs(id, b)
						o.NoteDeviceEnergy(id, 0.5)
						if i%5 == 4 {
							o.DeregisterDevice(id)
						}
					}
				}(w)
			}

			// Task workers: submit, mutate, ingest a bogus reading, delete.
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 15; i++ {
						tk := validTask()
						tk.Area = geo.Circle{Center: positions[w%len(positions)], RadiusM: 400}
						id, err := o.SubmitTask(tk, simclock.Epoch, func(TaskID, string, sensors.Reading) {})
						if err != nil {
							t.Errorf("SubmitTask: %v", err)
							return
						}
						_ = o.UpdateTaskParams(id, simclock.Epoch, func(tk *Task) { tk.SpatialDensity = 1 })
						r := sensors.Reading{Sensor: sensors.Barometer, At: simclock.Epoch, Where: tk.Area.Center}
						_ = o.ReceiveData(string(id)+"#1", "nobody", r, simclock.Epoch)
						if err := o.DeleteTask(id); err != nil {
							t.Errorf("DeleteTask: %v", err)
							return
						}
					}
				}(w)
			}

			// The scheduler tick and the read side run throughout.
			stop := make(chan struct{})
			loops.Add(1)
			go func() {
				defer loops.Done()
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					o.ProcessDue(simclock.Epoch.Add(time.Duration(i) * time.Second))
					o.NextWake()
					i++
				}
			}()
			for r := 0; r < 2; r++ {
				loops.Add(1)
				go func() {
					defer loops.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						_ = o.Stats()
						_ = o.Selections()
						_ = o.SelectionsDropped()
						_ = o.TaskCount()
					}
				}()
			}

			done := make(chan struct{})
			go func() {
				wg.Wait()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("concurrent workers wedged")
			}
			close(stop)
			loops.Wait()
		})
	}
}
