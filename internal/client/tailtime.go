package client

import (
	"sync"
	"time"
)

// TailObserver infers the cellular radio's tail state from observed packet
// activity — the reproduction of the paper's tPacketCapture trick
// (section 4.1): Android offers no radio-state API, so the client watches
// the packet capture directory and treats any activity as a tail reset.
//
// Feed it every observed packet with Observe; InTail and TailRemaining
// then answer whether an upload right now would ride the tail. Safe for
// concurrent use (the packet watcher and the upload path race in a real
// deployment).
type TailObserver struct {
	tailDur time.Duration

	mu         sync.Mutex
	lastPacket time.Time
	seen       bool
}

// DefaultTailDuration is the LTE inactivity timer the paper measures
// (~11.5 s).
const DefaultTailDuration = 11500 * time.Millisecond

// NewTailObserver builds an observer for a given tail duration; zero uses
// the LTE default.
func NewTailObserver(tailDur time.Duration) *TailObserver {
	if tailDur <= 0 {
		tailDur = DefaultTailDuration
	}
	return &TailObserver{tailDur: tailDur}
}

// Observe records packet activity at an instant.
func (o *TailObserver) Observe(at time.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.seen || at.After(o.lastPacket) {
		o.lastPacket = at
		o.seen = true
	}
}

// InTail reports whether the radio is inferred to be in its tail at now.
func (o *TailObserver) InTail(now time.Time) bool {
	return o.TailRemaining(now) > 0
}

// TailRemaining returns how much inferred tail time is left at now; zero
// when the radio is inferred idle (or nothing was ever observed).
func (o *TailObserver) TailRemaining(now time.Time) time.Duration {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.seen {
		return 0
	}
	end := o.lastPacket.Add(o.tailDur)
	if !end.After(now) {
		return 0
	}
	if now.Before(o.lastPacket) {
		return o.tailDur
	}
	return end.Sub(now)
}
