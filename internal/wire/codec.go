package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Codec is one wire encoding: how payload structs become bytes and how
// frames are laid out on the stream. Two implementations exist — the v1
// JSON envelope (kept byte-identical for interop with old peers) and the
// v2 compact binary framing. The codec is chosen per connection during
// the Hello exchange; see Negotiate semantics in DESIGN.md §13.
//
// All implementations are stateless and safe for concurrent use.
type Codec interface {
	// Name is the operator-facing codec name ("json", "binary").
	Name() string
	// Version is the ProtocolVersion value that selects this codec in
	// the Hello exchange.
	Version() int
	// Encode marshals a payload into an envelope in this codec's payload
	// encoding.
	Encode(t MsgType, seq uint64, payload interface{}) (Envelope, error)
	// Decode unmarshals an envelope payload into out. Envelopes remember
	// their payload encoding, so decoding an envelope produced by a
	// different codec still works.
	Decode(env Envelope, out interface{}) error
	// AppendFrame appends one framed envelope to dst and returns the
	// extended slice — the building block write coalescing batches into a
	// single syscall. The frame size is validated before anything is
	// appended, so a failed call leaves dst unchanged.
	AppendFrame(dst []byte, env Envelope) ([]byte, error)
	// WriteFrame writes one framed envelope.
	WriteFrame(w io.Writer, env Envelope) error
	// ReadFrame reads one framed envelope. Oversized length prefixes are
	// rejected before any payload buffer is allocated.
	ReadFrame(r io.Reader) (Envelope, error)
}

// The two codec implementations. Both are stateless singletons.
var (
	JSON   Codec = jsonCodec{}
	Binary Codec = binaryCodec{}
)

// CodecByName resolves an operator-facing codec name; empty means JSON
// (the v1 default).
func CodecByName(name string) (Codec, error) {
	switch name {
	case "", "json", "v1":
		return JSON, nil
	case "binary", "v2":
		return Binary, nil
	default:
		return nil, fmt.Errorf("wire: unknown codec %q (want json or binary)", name)
	}
}

// CodecForVersion maps a negotiated protocol version to its codec.
func CodecForVersion(v int) (Codec, bool) {
	switch v {
	case ProtocolVersion:
		return JSON, true
	case ProtocolVersionBinary:
		return Binary, true
	default:
		return nil, false
	}
}

// jsonCodec is the v1 encoding: a 4-byte big-endian length prefix
// followed by the JSON envelope {"type":...,"seq":...,"payload":{...}}.
// It delegates to the package-level free functions, which predate the
// codec split and remain the compatibility surface for old peers, the
// fuzz corpus, and every existing test.
type jsonCodec struct{}

func (jsonCodec) Name() string { return "json" }
func (jsonCodec) Version() int { return ProtocolVersion }

func (jsonCodec) Encode(t MsgType, seq uint64, payload interface{}) (Envelope, error) {
	return Encode(t, seq, payload)
}

func (jsonCodec) Decode(env Envelope, out interface{}) error {
	return Decode(env, out)
}

func (jsonCodec) AppendFrame(dst []byte, env Envelope) ([]byte, error) {
	if env.binPayload {
		met.errEncode.Inc()
		return dst, fmt.Errorf("wire: envelope holds a binary payload; re-encode for the json codec")
	}
	body, err := json.Marshal(env)
	if err != nil {
		met.errEncode.Inc()
		return dst, fmt.Errorf("wire: marshal envelope: %w", err)
	}
	if len(body) > MaxMessageBytes {
		met.errFrame.Inc()
		return dst, fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	dst = append(dst, hdr[:]...)
	return append(dst, body...), nil
}

func (jsonCodec) WriteFrame(w io.Writer, env Envelope) error {
	return WriteFrame(w, env)
}

func (jsonCodec) ReadFrame(r io.Reader) (Envelope, error) {
	return ReadFrame(r)
}
