// Package wire defines the Sense-Aid network protocol: length-prefixed
// JSON messages exchanged between devices, the Sense-Aid server, and
// crowdsensing application servers (CAS).
//
// Every connection starts with a Hello identifying the peer's role. The
// device API mirrors the paper's client-side library (register,
// deregister, update_preferences, start_sensing, send_sense_data) and the
// CAS API mirrors its server-side library (task, update_task_param,
// delete_task, receive_sensed_data).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/power"
	"senseaid/internal/sensors"
)

// MaxMessageBytes bounds a single frame; crowdsensing payloads are small,
// so anything larger indicates a corrupt or hostile stream.
const MaxMessageBytes = 1 << 20

// MsgType discriminates envelope payloads.
type MsgType string

// Message types.
const (
	// Connection setup.
	TypeHello MsgType = "hello"
	TypeAck   MsgType = "ack"
	TypeError MsgType = "error"

	// Device -> server (the paper's client-side library calls).
	TypeRegister    MsgType = "register"
	TypeDeregister  MsgType = "deregister"
	TypeUpdatePrefs MsgType = "update_preferences"
	TypeStateReport MsgType = "state_report"
	TypeSenseData   MsgType = "send_sense_data"

	// Server -> device.
	TypeSchedule MsgType = "schedule"

	// CAS -> server (the paper's server-side library calls).
	TypeSubmitTask MsgType = "task"
	TypeUpdateTask MsgType = "update_task_param"
	TypeDeleteTask MsgType = "delete_task"

	// Server -> CAS.
	TypeSensedData MsgType = "receive_sensed_data"
)

// Role identifies a peer.
type Role string

// Roles.
const (
	RoleDevice Role = "device"
	RoleCAS    Role = "cas"
)

// Envelope is the frame body: a type tag, a correlation ID for
// request/response pairs, and a type-specific payload.
type Envelope struct {
	Type    MsgType         `json:"type"`
	Seq     uint64          `json:"seq,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`

	// binPayload records that Payload holds the v2 wire-binary payload
	// encoding rather than JSON. Envelopes remember how they were
	// encoded so Decode works regardless of which codec framed them.
	binPayload bool
}

// BinaryPayload reports whether the envelope's payload is in the v2
// wire-binary encoding. A relay (the router tier) uses it to decide
// whether a frame read from one connection can be re-framed verbatim
// for another: a JSON payload fits either codec, a binary payload must
// be decoded and re-encoded before it can ride a v1 connection.
func (e Envelope) BinaryPayload() bool { return e.binPayload }

// Hello opens every connection. It is always framed with the v1 JSON
// codec, whatever Version asks for, so any server can read it; the
// negotiated codec takes over after the Hello/Ack exchange (see
// CodecForVersion).
type Hello struct {
	Role Role `json:"role"`
	// Version names the protocol revision — and thereby the codec — the
	// peer wants to speak: 1 is the JSON envelope, 2 the binary framing.
	Version int `json:"version"`
}

// ProtocolVersion is the v1 protocol revision: JSON envelopes behind a
// 4-byte length prefix. Old peers speak only this.
const ProtocolVersion = 1

// ProtocolVersionBinary is the v2 protocol revision: compact binary
// framing (varint length + type byte + binary payloads). Negotiated in
// the Hello exchange; servers that cap at v1 answer a v2 Hello with a
// plain Ack and the connection stays on JSON.
const ProtocolVersionBinary = 2

// Ack is a generic success response; Ref optionally names a created
// resource (a task ID, a device ID). On the Hello ack, Version reports
// the protocol revision the server accepted (omitted when v1, so the v1
// ack stays byte-identical for old clients).
type Ack struct {
	Ref     string `json:"ref,omitempty"`
	Version int    `json:"version,omitempty"`
}

// Error is a failure response.
type Error struct {
	Message string `json:"message"`
}

// Register announces a device and its capabilities.
type Register struct {
	// DeviceID is the hash of the IMEI (never the IMEI itself).
	DeviceID   string         `json:"device_id"`
	Position   geo.Point      `json:"position"`
	BatteryPct float64        `json:"battery_pct"`
	Sensors    []sensors.Type `json:"sensors"`
	DeviceType string         `json:"device_type,omitempty"`
	Budget     power.Budget   `json:"budget"`
}

// UpdatePrefs changes a device's crowdsensing preferences.
type UpdatePrefs struct {
	Budget power.Budget `json:"budget"`
}

// StateReport is the service thread's periodic control message: current
// battery, coarse position, and the tail-time stamp.
type StateReport struct {
	Position   geo.Point `json:"position"`
	BatteryPct float64   `json:"battery_pct"`
	LastComm   time.Time `json:"last_comm"`
}

// Schedule asks a device to sense and upload for one request.
//
// TraceID/SpanID carry the task's trace context to the device; a
// well-behaved client echoes them on the resulting SenseData so the
// upload joins the trace. Both are optional — old peers that omit them
// (and old servers that ignore them) interoperate unchanged, because
// the JSON codec drops unknown fields and omits empty ones.
type Schedule struct {
	RequestID string       `json:"request_id"`
	TaskID    string       `json:"task_id"`
	Sensor    sensors.Type `json:"sensor"`
	Due       time.Time    `json:"due"`
	Deadline  time.Time    `json:"deadline"`
	TraceID   string       `json:"trace_id,omitempty"`
	SpanID    string       `json:"span_id,omitempty"`
}

// SenseData carries one reading from a device. Path records how the
// upload rode the radio — "tail" when it reused an existing LTE tail
// window, "promoted" when the radio had to be woken for it — so the
// server can account energy outcomes without trusting clocks to line up.
type SenseData struct {
	RequestID string          `json:"request_id"`
	Reading   sensors.Reading `json:"reading"`
	Path      string          `json:"path,omitempty"`
	// TraceID/SpanID echo the Schedule's trace context (optional).
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// Upload path values for SenseData.Path.
const (
	PathTail     = "tail"
	PathPromoted = "promoted"
)

// TaskSpec is the CAS-facing task description (Table 1).
type TaskSpec struct {
	// ClientTaskID, when set, makes submission idempotent: resubmitting
	// the same ClientTaskID with the same spec returns the existing
	// task's ID instead of creating a twin, so a CAS that retries after
	// a reconnect (or a server restart) cannot double-schedule.
	ClientTaskID     string        `json:"client_task_id,omitempty"`
	Sensor           sensors.Type  `json:"sensor_type"`
	SamplingPeriod   time.Duration `json:"sampling_period"`
	SamplingDuration time.Duration `json:"sampling_duration,omitempty"`
	Start            time.Time     `json:"start_time,omitempty"`
	End              time.Time     `json:"end_time,omitempty"`
	Center           geo.Point     `json:"center"`
	AreaRadiusM      float64       `json:"area_radius"`
	SpatialDensity   int           `json:"spatial_density"`
	DeviceType       string        `json:"device_type,omitempty"`
	// TraceID/SpanID, when set by a CAS that traces its own requests,
	// become the identity of the server-side trace (optional).
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// UpdateTask mutates an existing task's parameters; zero fields are left
// unchanged.
type UpdateTask struct {
	TaskID         string        `json:"task_id"`
	SamplingPeriod time.Duration `json:"sampling_period,omitempty"`
	SpatialDensity int           `json:"spatial_density,omitempty"`
	AreaRadiusM    float64       `json:"area_radius,omitempty"`
	End            time.Time     `json:"end_time,omitempty"`
}

// DeleteTask removes a task.
type DeleteTask struct {
	TaskID string `json:"task_id"`
}

// SensedData delivers one validated reading to the CAS.
type SensedData struct {
	TaskID   string          `json:"task_id"`
	DeviceID string          `json:"device_id"`
	Reading  sensors.Reading `json:"reading"`
	// TraceID/SpanID carry the delivery's trace context back to the
	// CAS (optional), closing the submit → delivery loop.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// Encode marshals a payload into an envelope.
func Encode(t MsgType, seq uint64, payload interface{}) (Envelope, error) {
	var raw json.RawMessage
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			met.errEncode.Inc()
			return Envelope{}, fmt.Errorf("wire: marshal %s: %w", t, err)
		}
		raw = b
	}
	return Envelope{Type: t, Seq: seq, Payload: raw}, nil
}

// Decode unmarshals an envelope payload into out, honouring the payload
// encoding the envelope was framed with (JSON for v1 envelopes and
// JSON-fallback binary frames, wire-binary for v2 envelopes).
func Decode(env Envelope, out interface{}) error {
	if len(env.Payload) == 0 {
		met.errDecode.Inc()
		return fmt.Errorf("wire: %s: empty payload", env.Type)
	}
	if env.binPayload {
		return decodeBinaryPayload(env.Type, env.Payload, out)
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		met.errDecode.Inc()
		return fmt.Errorf("wire: unmarshal %s: %w", env.Type, err)
	}
	return nil
}

// WriteFrame writes one envelope as a 4-byte big-endian length followed by
// its JSON encoding — the v1 framing.
func WriteFrame(w io.Writer, env Envelope) error {
	if env.binPayload {
		met.errEncode.Inc()
		return fmt.Errorf("wire: envelope holds a binary payload; re-encode for the json codec")
	}
	body, err := json.Marshal(env)
	if err != nil {
		met.errEncode.Inc()
		return fmt.Errorf("wire: marshal envelope: %w", err)
	}
	if len(body) > MaxMessageBytes {
		met.errFrame.Inc()
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		met.errIO.Inc()
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		met.errIO.Inc()
		return fmt.Errorf("wire: write body: %w", err)
	}
	met.bytesTx.Add(uint64(len(hdr) + len(body)))
	return nil
}

// ReadFrame reads one v1 envelope. The length prefix is validated
// against MaxMessageBytes before the payload buffer is allocated.
func ReadFrame(r io.Reader) (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxMessageBytes {
		met.errFrame.Inc()
		return Envelope{}, fmt.Errorf("wire: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		met.errIO.Inc()
		return Envelope{}, fmt.Errorf("wire: read body: %w", err)
	}
	met.bytesRx.Add(uint64(len(hdr)) + uint64(n))
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		met.errDecode.Inc()
		return Envelope{}, fmt.Errorf("wire: unmarshal envelope: %w", err)
	}
	if env.Type == "" {
		met.errDecode.Inc()
		return Envelope{}, fmt.Errorf("wire: envelope missing type")
	}
	return env, nil
}
