package phone

import (
	"math"
	"testing"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/mobility"
	"senseaid/internal/power"
	"senseaid/internal/radio"
	"senseaid/internal/sensors"
	"senseaid/internal/simclock"
	"senseaid/internal/traffic"
)

func newTestPhone(t *testing.T, s *simclock.Scheduler, withTraffic bool) *Phone {
	t.Helper()
	p, err := New(s, Config{
		ID:         "dev-1",
		Mobility:   mobility.Stationary{P: geo.CSDepartment},
		HasTraffic: withTraffic,
		Traffic:    traffic.DefaultConfig(7),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestNewValidates(t *testing.T) {
	s := simclock.NewScheduler()
	if _, err := New(s, Config{Mobility: mobility.Stationary{}}); err == nil {
		t.Fatal("missing ID accepted")
	}
	if _, err := New(s, Config{ID: "d"}); err == nil {
		t.Fatal("missing mobility accepted")
	}
	if _, err := New(s, Config{ID: "d", Mobility: mobility.Stationary{}, Sensors: []sensors.Type{sensors.Type(99)}}); err == nil {
		t.Fatal("invalid sensor accepted")
	}
	if _, err := New(s, Config{ID: "d", Mobility: mobility.Stationary{}, BatteryPct: 150}); err == nil {
		t.Fatal("battery >100% accepted")
	}
	if _, err := New(s, Config{ID: "d", Mobility: mobility.Stationary{}, Budget: power.Budget{TotalJ: -1}}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := simclock.NewScheduler()
	p := newTestPhone(t, s, false)
	if p.Battery().Percent() != 100 {
		t.Fatalf("default battery = %v%%, want 100", p.Battery().Percent())
	}
	if !p.HasSensor(sensors.Barometer) || !p.HasSensor(sensors.GPS) {
		t.Fatal("default sensor suite should include every sensor")
	}
	if p.Budget().TotalJ != power.DefaultBudget().TotalJ {
		t.Fatal("default budget not applied")
	}
	if p.Radio().Profile().Name != "LTE" {
		t.Fatalf("default radio = %s, want LTE", p.Radio().Profile().Name)
	}
}

func TestSampleChargesCrowdsensing(t *testing.T) {
	s := simclock.NewScheduler()
	p := newTestPhone(t, s, false)
	field := sensors.NewPressureField()
	r, err := p.Sample(sensors.Barometer, func(pt geo.Point, at time.Time) float64 {
		return field.At(pt, at)
	})
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if r.Sensor != sensors.Barometer || r.Where != geo.CSDepartment {
		t.Fatalf("reading = %+v", r)
	}
	want := sensors.Barometer.SampleEnergyJ()
	if got := p.SensingEnergyJ(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("sensing energy = %v, want %v", got, want)
	}
	if got := p.CrowdsenseEnergyJ(false); math.Abs(got-want) > 1e-12 {
		t.Fatalf("crowdsense energy = %v, want %v", got, want)
	}
	// The battery must have been debited.
	if p.Battery().RemainingJ() >= p.Battery().CapacityJ() {
		t.Fatal("battery not drained by sampling")
	}
}

func TestSampleMissingSensorFails(t *testing.T) {
	s := simclock.NewScheduler()
	p, err := New(s, Config{
		ID:       "baro-only",
		Mobility: mobility.Stationary{P: geo.CSDepartment},
		Sensors:  []sensors.Type{sensors.Barometer},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := p.Sample(sensors.Gyroscope, nil); err == nil {
		t.Fatal("sampling a missing sensor should fail")
	}
	if p.CrowdsenseEnergyJ(false) != 0 {
		t.Fatal("failed sample must not charge energy")
	}
}

func TestBackgroundTrafficDrivesRadioAndBattery(t *testing.T) {
	s := simclock.NewScheduler()
	p := newTestPhone(t, s, true)
	p.StartTraffic(s.Now().Add(time.Hour))
	s.Drain()
	p.Settle()

	if p.BackgroundEnergyJ() <= 0 {
		t.Fatal("background traffic produced no radio energy")
	}
	if p.CrowdsenseEnergyJ(false) != 0 {
		t.Fatal("background-only run charged crowdsensing energy")
	}
	spent := p.Battery().CapacityJ() - p.Battery().RemainingJ()
	total := p.Radio().Meter().TotalJ()
	if math.Abs(spent-total) > 1e-6 {
		t.Fatalf("battery spent %.3f J, radio meter %.3f J", spent, total)
	}
}

func TestOnTrafficHookFires(t *testing.T) {
	s := simclock.NewScheduler()
	p := newTestPhone(t, s, true)
	count := 0
	p.OnTraffic(func(traffic.Transfer) { count++ })
	p.StartTraffic(s.Now().Add(time.Hour))
	s.Drain()
	if count == 0 {
		t.Fatal("traffic hook never fired")
	}
}

func TestCrowdsensingUploadAttribution(t *testing.T) {
	s := simclock.NewScheduler()
	p := newTestPhone(t, s, false)
	p.Radio().Send(600, radio.CauseCrowdsensing, true)
	s.RunFor(time.Minute)
	p.Settle()

	prof := p.Radio().Profile()
	want := prof.PromotionEnergyJ() + prof.TxW*prof.TxDuration(600).Seconds() + prof.FullTailEnergyJ()
	if got := p.CrowdsenseEnergyJ(false); math.Abs(got-want) > 1e-9 {
		t.Fatalf("crowdsense energy = %.4f, want %.4f", got, want)
	}
}

func TestControlTrafficSeparatedByFlag(t *testing.T) {
	s := simclock.NewScheduler()
	p := newTestPhone(t, s, false)
	p.Radio().Send(200, radio.CauseControl, true)
	s.RunFor(time.Minute)

	without := p.CrowdsenseEnergyJ(false)
	with := p.CrowdsenseEnergyJ(true)
	if without != 0 {
		t.Fatalf("control energy leaked into crowdsensing account: %v", without)
	}
	if with <= 0 {
		t.Fatal("includeControl=true should include control energy")
	}
}

func TestWakeupAccounting(t *testing.T) {
	s := simclock.NewScheduler()
	p := newTestPhone(t, s, false)
	p.Wakeup()
	p.Wakeup()
	if got, want := p.CrowdsenseEnergyJ(false), 2*WakeupEnergyJ; math.Abs(got-want) > 1e-12 {
		t.Fatalf("wakeup energy = %v, want %v", got, want)
	}
}

func TestSelectionCounter(t *testing.T) {
	s := simclock.NewScheduler()
	p := newTestPhone(t, s, false)
	if p.TimesSelected() != 0 {
		t.Fatal("fresh phone already selected")
	}
	p.MarkSelected()
	p.MarkSelected()
	if p.TimesSelected() != 2 {
		t.Fatalf("TimesSelected = %d, want 2", p.TimesSelected())
	}
}

func TestPositionFollowsMobility(t *testing.T) {
	s := simclock.NewScheduler()
	script := mobility.NewScripted([]mobility.Keyframe{
		{At: simclock.Epoch, P: geo.CSDepartment},
		{At: simclock.Epoch.Add(time.Hour), P: geo.EEDepartment},
	})
	p, err := New(s, Config{ID: "walker", Mobility: script})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if p.Position() != geo.CSDepartment {
		t.Fatal("initial position wrong")
	}
	if p.PositionAt(simclock.Epoch.Add(2*time.Hour)) != geo.EEDepartment {
		t.Fatal("future position wrong")
	}
}
