package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClosed is returned by RPC calls on a closed connection.
var ErrClosed = errors.New("wire: connection closed")

// DefaultCallTimeout bounds a request/response exchange.
const DefaultCallTimeout = 10 * time.Second

// DefaultWriteTimeout bounds a single frame write, mirroring the
// server's per-connection write deadline: a stalled peer must surface
// as an error, never wedge the writer's goroutine permanently.
const DefaultWriteTimeout = 5 * time.Second

// RPCConn layers request/response and push-message handling over a framed
// connection. The device client and the CAS library both build on it.
//
// Every write carries a deadline, and a write failure (including a
// deadline expiry against a stalled peer) tears the connection down:
// after a partial frame the stream is unframeable, so the only safe
// recovery is a fresh connection. Done exposes the teardown to owners
// that want to redial.
type RPCConn struct {
	nc           net.Conn
	timeout      time.Duration
	writeTimeout time.Duration

	writeMu sync.Mutex

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]chan Envelope
	closed  bool

	// push receives non-response messages (schedules, sensed data).
	push func(Envelope)

	doneOnce sync.Once
	done     chan struct{}

	wg sync.WaitGroup
}

// NewRPCConn wraps an established connection and performs the Hello
// handshake for the given role. push receives server-initiated messages
// and is called from the read loop (handlers must not block). The
// handshake runs under read and write deadlines, so a stalled or silent
// server fails the dial instead of hanging it.
func NewRPCConn(nc net.Conn, role Role, push func(Envelope)) (*RPCConn, error) {
	c := &RPCConn{
		nc:           nc,
		timeout:      DefaultCallTimeout,
		writeTimeout: DefaultWriteTimeout,
		pending:      make(map[uint64]chan Envelope),
		push:         push,
		done:         make(chan struct{}),
	}
	// Handshake synchronously, before the read loop starts.
	env, err := Encode(TypeHello, 0, Hello{Role: role, Version: ProtocolVersion})
	if err != nil {
		return nil, err
	}
	_ = nc.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	if err := WriteFrame(nc, env); err != nil {
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	_ = nc.SetReadDeadline(time.Now().Add(c.timeout))
	resp, err := ReadFrame(nc)
	if err != nil {
		return nil, fmt.Errorf("wire: hello response: %w", err)
	}
	_ = nc.SetReadDeadline(time.Time{})
	if resp.Type == TypeError {
		var e Error
		_ = Decode(resp, &e)
		return nil, fmt.Errorf("wire: server rejected hello: %s", e.Message)
	}
	if resp.Type != TypeAck {
		return nil, fmt.Errorf("wire: unexpected hello response %s", resp.Type)
	}

	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// SetTimeouts adjusts the call-response and frame-write deadlines
// (tests tighten them; zero leaves a value unchanged).
func (c *RPCConn) SetTimeouts(call, write time.Duration) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if call > 0 {
		c.timeout = call
	}
	if write > 0 {
		c.writeTimeout = write
	}
}

// Done is closed when the connection dies — read-loop failure, a write
// fault, or an explicit Close. Owners watch it to trigger a redial.
func (c *RPCConn) Done() <-chan struct{} { return c.done }

// writeFrame sends one envelope under the write deadline. A failed
// write kills the connection: the peer may have received a partial
// frame, so nothing sent afterwards could be framed correctly.
func (c *RPCConn) writeFrame(env Envelope) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_ = c.nc.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	if err := WriteFrame(c.nc, env); err != nil {
		// Closing unblocks the read loop, which drains pending calls
		// and closes Done.
		_ = c.nc.Close()
		return err
	}
	return nil
}

// Call sends a request and waits for its Ack (returned) or Error
// (converted to a Go error).
func (c *RPCConn) Call(t MsgType, payload interface{}) (Ack, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Ack{}, ErrClosed
	}
	c.nextSeq++
	seq := c.nextSeq
	ch := make(chan Envelope, 1)
	c.pending[seq] = ch
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
	}()

	env, err := Encode(t, seq, payload)
	if err != nil {
		return Ack{}, err
	}
	if err := c.writeFrame(env); err != nil {
		return Ack{}, fmt.Errorf("wire: send %s: %w", t, err)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return Ack{}, ErrClosed
		}
		if resp.Type == TypeError {
			var e Error
			_ = Decode(resp, &e)
			return Ack{}, fmt.Errorf("wire: %s: %s", t, e.Message)
		}
		var ack Ack
		if len(resp.Payload) > 0 {
			if err := Decode(resp, &ack); err != nil {
				return Ack{}, err
			}
		}
		return ack, nil
	case <-time.After(c.timeout):
		return Ack{}, fmt.Errorf("wire: %s: timeout after %v", t, c.timeout)
	}
}

// Notify sends a message without waiting for a response.
func (c *RPCConn) Notify(t MsgType, payload interface{}) error {
	env, err := Encode(t, 0, payload)
	if err != nil {
		return err
	}
	return c.writeFrame(env)
}

// Close tears the connection down and waits for the read loop.
func (c *RPCConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.nc.Close()
	c.wg.Wait()
	return err
}

func (c *RPCConn) readLoop() {
	defer c.wg.Done()
	for {
		env, err := ReadFrame(c.nc)
		if err != nil {
			// The error may be a protocol fault on a live socket, not
			// just a peer disconnect: close the conn so it never leaks.
			_ = c.nc.Close()
			c.mu.Lock()
			c.closed = true
			for seq, ch := range c.pending {
				close(ch)
				delete(c.pending, seq)
			}
			c.mu.Unlock()
			c.doneOnce.Do(func() { close(c.done) })
			return
		}
		if env.Seq != 0 && (env.Type == TypeAck || env.Type == TypeError) {
			c.mu.Lock()
			ch, ok := c.pending[env.Seq]
			c.mu.Unlock()
			if ok {
				ch <- env
			}
			continue
		}
		if c.push != nil {
			c.push(env)
		}
	}
}
