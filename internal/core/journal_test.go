package core

import (
	"encoding/json"
	"reflect"
	"slices"
	"sync"
	"testing"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/power"
	"senseaid/internal/reputation"
	"senseaid/internal/sensors"
	"senseaid/internal/simclock"
)

// memJournal is an in-memory JournalSink for tests.
type memJournal struct {
	mu   sync.Mutex
	recs []JournalRecord
}

func (m *memJournal) Append(rec JournalRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs = append(m.recs, rec)
}

func (m *memJournal) records() []JournalRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return slices.Clone(m.recs)
}

// jsonRoundTrip pushes records through their on-disk JSON encoding, so
// the replay tests exercise exactly what a restart would read.
func jsonRoundTrip(t *testing.T, recs []JournalRecord) []JournalRecord {
	t.Helper()
	out := make([]JournalRecord, len(recs))
	for i, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal record %d: %v", i, err)
		}
		if err := json.Unmarshal(b, &out[i]); err != nil {
			t.Fatalf("unmarshal record %d: %v", i, err)
		}
	}
	return out
}

func journaledConfig(j JournalSink) ServerConfig {
	cfg := DefaultServerConfig()
	cfg.Reputation = reputation.NewTracker(reputation.Config{})
	cfg.Journal = j
	return cfg
}

func nopSink(TaskID, string, sensors.Reading) {}

// registerJournaled registers devices through the server (the journaled
// path); registerFresh writes straight to the DeviceStore, which by
// design does not journal.
func registerJournaled(t *testing.T, s *Server, ids ...string) {
	t.Helper()
	for _, id := range ids {
		if err := s.RegisterDevice(freshDevice(id)); err != nil {
			t.Fatalf("RegisterDevice(%s): %v", id, err)
		}
	}
}

// runCampaign drives a server through a representative slice of every
// journaled mutation: registrations, a periodic task, dispatches,
// accepted readings (completing a truth-discovery round), a waitlisted
// task, a deadline miss, a dispatch failure, prefs and energy updates,
// and a deregistration. Returns the final instant.
func runCampaign(t *testing.T, s *Server) time.Time {
	t.Helper()
	registerJournaled(t, s, "dev-a", "dev-b", "dev-c")
	id, err := s.SubmitTask(validTask(), simclock.Epoch, nopSink)
	if err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	// An unsatisfiable task (density 5 > 3 devices) parks on the wait queue.
	wide := validTask()
	wide.SpatialDensity = 5
	if _, err := s.SubmitTask(wide, simclock.Epoch, nopSink); err != nil {
		t.Fatalf("SubmitTask(wide): %v", err)
	}

	s.ProcessDue(simclock.Epoch) // dispatch round #0
	reading := func(at time.Time, v float64) sensors.Reading {
		return sensors.Reading{Sensor: sensors.Barometer, At: at, Where: geo.CSDepartment, Value: v}
	}
	req0 := string(id) + "#0"
	for _, dev := range []string{"dev-a", "dev-b"} {
		if err := s.ReceiveData(req0, dev, reading(simclock.Epoch, 1013), simclock.Epoch); err != nil {
			// Only the selected pair can deliver; the third device's data
			// is unsolicited and journals a reject.
			t.Logf("ReceiveData(%s): %v", dev, err)
		}
	}
	// Unsolicited upload: journaled as a reject.
	_ = s.ReceiveData(req0, "dev-c", reading(simclock.Epoch, 1013), simclock.Epoch)

	if err := s.UpdateDevicePrefs("dev-c", power.DefaultBudget()); err != nil {
		t.Fatalf("UpdateDevicePrefs: %v", err)
	}
	s.NoteDeviceEnergy("dev-a", 2.5)

	s.ProcessDue(simclock.Epoch.Add(10 * time.Minute)) // dispatch round #1
	req1 := string(id) + "#1"
	// Fail the delivery to one device that round #1 actually selected.
	var victim string
	for _, p := range s.Snapshot().Pending {
		if p.Req.TaskID == id && p.Req.Seq == 1 {
			victim = p.DeviceID
			break
		}
	}
	if victim == "" {
		t.Fatal("round #1 dispatched to no devices")
	}
	s.NoteDispatchFailure(req1, victim)
	// Round #1's other device misses its deadline; round #2 dispatches.
	s.ProcessDue(simclock.Epoch.Add(25 * time.Minute))

	s.DeregisterDevice("dev-c")
	return simclock.Epoch.Add(25 * time.Minute)
}

// normalize strips the fields allowed to differ between a live server
// and its replayed twin (nothing, today) for comparison.
func normalize(s SnapshotState) SnapshotState {
	s.JournalSeq = 0
	return s
}

func TestJournalReplayRebuildsServer(t *testing.T) {
	j := &memJournal{}
	live, err := NewServer(journaledConfig(j), &recordingDispatcher{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	runCampaign(t, live)
	want := live.Snapshot()

	restored, err := NewServer(journaledConfig(nil), &recordingDispatcher{})
	if err != nil {
		t.Fatalf("NewServer(restored): %v", err)
	}
	res, err := restored.Recover(nil, jsonRoundTrip(t, j.records()), func(TaskID) DataSink { return nopSink })
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if res.Skipped != 0 {
		t.Errorf("replay skipped %d records from a clean journal", res.Skipped)
	}
	if res.Applied != len(j.records()) {
		t.Errorf("applied %d of %d records", res.Applied, len(j.records()))
	}
	got := restored.Snapshot()
	if !reflect.DeepEqual(normalize(want), normalize(got)) {
		t.Errorf("replayed state diverges from live state\nlive:     %+v\nreplayed: %+v", normalize(want), normalize(got))
	}
	if want.JournalSeq != got.JournalSeq {
		t.Errorf("journal seq: live %d, replayed %d", want.JournalSeq, got.JournalSeq)
	}
}

func TestSnapshotPlusTailReplay(t *testing.T) {
	j := &memJournal{}
	live, err := NewServer(journaledConfig(j), &recordingDispatcher{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	// First half of the campaign, then a snapshot, then more traffic.
	registerJournaled(t, live, "dev-a", "dev-b", "dev-c")
	id, err := live.SubmitTask(validTask(), simclock.Epoch, nopSink)
	if err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	live.ProcessDue(simclock.Epoch)
	mid := live.Snapshot()

	req0 := string(id) + "#0"
	reading := sensors.Reading{Sensor: sensors.Barometer, At: simclock.Epoch, Where: geo.CSDepartment, Value: 1012}
	for _, dev := range []string{"dev-a", "dev-b"} {
		_ = live.ReceiveData(req0, dev, reading, simclock.Epoch)
	}
	live.ProcessDue(simclock.Epoch.Add(10 * time.Minute))
	want := live.Snapshot()

	// Round-trip the snapshot through JSON like the persist layer would.
	blob, err := json.Marshal(mid)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var snap SnapshotState
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}

	restored, err := NewServer(journaledConfig(nil), &recordingDispatcher{})
	if err != nil {
		t.Fatalf("NewServer(restored): %v", err)
	}
	// Hand Recover the FULL journal: records up to the snapshot's seq
	// must be recognized as already-applied (the persist layer retains
	// the previous epoch's file, so overlap is the normal case).
	res, err := restored.Recover(&snap, jsonRoundTrip(t, j.records()), func(TaskID) DataSink { return nopSink })
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if res.Skipped == 0 {
		t.Error("no records skipped despite full-journal overlap with the snapshot")
	}
	got := restored.Snapshot()
	if !reflect.DeepEqual(normalize(want), normalize(got)) {
		t.Errorf("snapshot+tail state diverges\nlive:     %+v\nreplayed: %+v", normalize(want), normalize(got))
	}
}

func TestRecoverRefusesNonFreshServer(t *testing.T) {
	s, _ := newTestServer(t)
	submitValid(t, s, 2, nil)
	if _, err := s.Recover(nil, nil, func(TaskID) DataSink { return nopSink }); err == nil {
		t.Fatal("Recover succeeded on a server that already holds tasks")
	}
	s2, _ := newTestServer(t)
	if _, err := s2.Recover(nil, nil, nil); err == nil {
		t.Fatal("Recover accepted a nil sink factory")
	}
}

func TestRecoverSkipsMalformedRecords(t *testing.T) {
	hostile := []JournalRecord{
		{Seq: 1, Op: "no_such_op"},
		{Seq: 2, Op: opSubmit},                                      // nil task
		{Seq: 3, Op: opSubmit, Task: &Task{ID: "x"}},                // invalid spec
		{Seq: 4, Op: opDispatch, Req: &RequestRef{TaskID: "ghost"}}, // unknown task
		{Seq: 5, Op: opOutcome, DeviceID: "d", Outcome: 99},         // bad outcome
		{Seq: 6, Op: opRegister},                                    // nil device
		{Seq: 7, Op: opReceive, ReqID: "ghost#0", DeviceID: "d"},    // no pending
		{Seq: 0, Op: opResetWindow},                                 // unnumbered
	}
	s, err := NewServer(journaledConfig(nil), &recordingDispatcher{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	res, err := s.Recover(nil, hostile, func(TaskID) DataSink { return nopSink })
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if res.Applied != 0 {
		t.Errorf("applied %d hostile records", res.Applied)
	}
	if res.Skipped != len(hostile) {
		t.Errorf("skipped %d of %d hostile records", res.Skipped, len(hostile))
	}
	if s.TaskCount() != 0 || s.Devices().Len() != 0 {
		t.Error("hostile records created state")
	}
}

func TestSubmitTaskIdempotentOnClientID(t *testing.T) {
	s, _ := newTestServer(t)
	registerFresh(t, s, "dev-a", "dev-b")
	spec := validTask()
	spec.ClientID = "cas-1/campaign"

	id1, err := s.SubmitTask(spec, simclock.Epoch, nopSink)
	if err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	// Same client identity, byte-identical spec: same task, no twin —
	// even when resubmitted later in wall-clock time (the retry case).
	var delivered []string
	sink2 := func(_ TaskID, dev string, _ sensors.Reading) { delivered = append(delivered, dev) }
	id2, err := s.SubmitTask(spec, simclock.Epoch.Add(time.Minute), sink2)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if id1 != id2 {
		t.Fatalf("resubmit minted a new task: %s then %s", id1, id2)
	}
	if st := s.Stats(); st.TasksSubmitted != 1 {
		t.Fatalf("TasksSubmitted = %d, want 1", st.TasksSubmitted)
	}

	// The resubmit rebound the sink: readings now reach sink2.
	s.ProcessDue(simclock.Epoch)
	reading := sensors.Reading{Sensor: sensors.Barometer, At: simclock.Epoch, Where: geo.CSDepartment, Value: 1010}
	req0 := string(id1) + "#0"
	if err := s.ReceiveData(req0, "dev-a", reading, simclock.Epoch); err != nil {
		t.Fatalf("ReceiveData: %v", err)
	}
	if len(delivered) != 1 || delivered[0] != "dev-a" {
		t.Fatalf("rebound sink saw %v, want [dev-a]", delivered)
	}

	// Same identity, different spec: refused.
	changed := spec
	changed.SpatialDensity++
	if _, err := s.SubmitTask(changed, simclock.Epoch, nopSink); err == nil {
		t.Fatal("conflicting spec accepted under the same ClientID")
	}

	// No client identity: every submission is a new task, as before.
	anon := validTask()
	a1, _ := s.SubmitTask(anon, simclock.Epoch, nopSink)
	a2, _ := s.SubmitTask(anon, simclock.Epoch, nopSink)
	if a1 == a2 {
		t.Fatal("anonymous submissions deduplicated")
	}
}

func TestClientIDSurvivesRecovery(t *testing.T) {
	j := &memJournal{}
	live, err := NewServer(journaledConfig(j), &recordingDispatcher{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	registerJournaled(t, live, "dev-a", "dev-b")
	spec := validTask()
	spec.ClientID = "cas-1/campaign"
	id, err := live.SubmitTask(spec, simclock.Epoch, nopSink)
	if err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	snap := live.Snapshot()

	for _, from := range []struct {
		name string
		snap *SnapshotState
		recs []JournalRecord
	}{
		{"from-journal", nil, jsonRoundTrip(t, j.records())},
		{"from-snapshot", &snap, nil},
	} {
		t.Run(from.name, func(t *testing.T) {
			restored, err := NewServer(journaledConfig(nil), &recordingDispatcher{})
			if err != nil {
				t.Fatalf("NewServer: %v", err)
			}
			if _, err := restored.Recover(from.snap, from.recs, func(TaskID) DataSink { return nopSink }); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			// The restart-retry: resubmitting the identical spec must find
			// the restored task, not double-schedule the campaign.
			got, err := restored.SubmitTask(spec, simclock.Epoch.Add(time.Hour), nopSink)
			if err != nil {
				t.Fatalf("post-recovery resubmit: %v", err)
			}
			if got != id {
				t.Fatalf("post-recovery resubmit minted %s, want %s", got, id)
			}
			if st := restored.Stats(); st.TasksSubmitted != 1 {
				t.Fatalf("TasksSubmitted = %d after recovery+resubmit, want 1", st.TasksSubmitted)
			}
		})
	}
}

func TestStatsSurviveRecovery(t *testing.T) {
	j := &memJournal{}
	live, err := NewServer(journaledConfig(j), &recordingDispatcher{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	runCampaign(t, live)
	want := live.Stats()
	if want.TasksSubmitted == 0 || want.ReadingsAccepted == 0 || want.DispatchesFailed == 0 {
		t.Fatalf("campaign produced trivial stats: %+v", want)
	}

	restored, err := NewServer(journaledConfig(nil), &recordingDispatcher{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if _, err := restored.Recover(nil, j.records(), func(TaskID) DataSink { return nopSink }); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := restored.Stats(); got != want {
		t.Errorf("stats diverge after recovery:\nlive:     %+v\nrestored: %+v", want, got)
	}
}

func TestFairnessWindowSurvivesRecovery(t *testing.T) {
	j := &memJournal{}
	cfg := journaledConfig(j)
	cfg.FairnessWindow = 10 * time.Minute
	live, err := NewServer(cfg, &recordingDispatcher{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	registerJournaled(t, live, "dev-a")
	live.NoteDeviceEnergy("dev-a", 5)
	live.ProcessDue(simclock.Epoch)
	// Two windows elapse: counters reset, the anchor advances.
	live.ProcessDue(simclock.Epoch.Add(25 * time.Minute))
	want := live.Snapshot()

	cfg2 := journaledConfig(nil)
	cfg2.FairnessWindow = 10 * time.Minute
	restored, err := NewServer(cfg2, &recordingDispatcher{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if _, err := restored.Recover(nil, j.records(), func(TaskID) DataSink { return nopSink }); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	got := restored.Snapshot()
	if !got.WindowStart.Equal(want.WindowStart) {
		t.Errorf("window anchor: live %v, restored %v", want.WindowStart, got.WindowStart)
	}
	d, ok := restored.Devices().Get("dev-a")
	if !ok || d.EnergySpentJ != 0 {
		t.Errorf("window reset not replayed: %+v", d)
	}
}

func TestShardedRecoveryAndRouting(t *testing.T) {
	east := Region{Name: "east", Area: geo.Circle{Center: geo.CSDepartment, RadiusM: 2000}}
	westCenter := geo.Point{Lat: geo.CSDepartment.Lat + 0.1, Lon: geo.CSDepartment.Lon}
	west := Region{Name: "west", Area: geo.Circle{Center: westCenter, RadiusM: 2000}}

	journals := map[string]*memJournal{"east": {}, "west": {}}
	cfg := DefaultServerConfig()
	cfg.ShardJournal = func(region string) JournalSink { return journals[region] }
	live, err := NewShardedServer(cfg, &recordingDispatcher{}, []Region{east, west})
	if err != nil {
		t.Fatalf("NewShardedServer: %v", err)
	}
	d1 := freshDevice("dev-east")
	d2 := freshDevice("dev-east2")
	d3 := freshDevice("dev-west")
	d3.Position = westCenter
	for _, d := range []DeviceState{d1, d2, d3} {
		if err := live.RegisterDevice(d); err != nil {
			t.Fatalf("RegisterDevice(%s): %v", d.ID, err)
		}
	}
	id, err := live.SubmitTask(validTask(), simclock.Epoch, nopSink)
	if err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	live.ProcessDue(simclock.Epoch)

	// Rebuild a fresh sharded deployment from the per-shard journals.
	cfg2 := DefaultServerConfig()
	restored, err := NewShardedServer(cfg2, &recordingDispatcher{}, []Region{east, west})
	if err != nil {
		t.Fatalf("NewShardedServer(restored): %v", err)
	}
	for i := 0; i < restored.Shards(); i++ {
		srv, region, err := restored.Shard(i)
		if err != nil {
			t.Fatalf("Shard(%d): %v", i, err)
		}
		if _, err := srv.Recover(nil, jsonRoundTrip(t, journals[region.Name].records()), func(TaskID) DataSink { return nopSink }); err != nil {
			t.Fatalf("Recover(%s): %v", region.Name, err)
		}
	}
	restored.RebuildRouting()

	// Device routing rebuilt: a prefs update for the west device lands.
	if err := restored.UpdateDevicePrefs("dev-west", power.DefaultBudget()); err != nil {
		t.Fatalf("UpdateDevicePrefs after recovery: %v", err)
	}
	// Task routing rebuilt: data for the dispatched request is accepted.
	reading := sensors.Reading{Sensor: sensors.Barometer, At: simclock.Epoch, Where: geo.CSDepartment, Value: 1011}
	req0 := string(id) + "#0"
	if err := restored.ReceiveData(req0, "dev-east", reading, simclock.Epoch); err != nil {
		t.Fatalf("ReceiveData after recovery: %v", err)
	}
	if st := restored.Stats(); st.ReadingsAccepted != 1 {
		t.Fatalf("ReadingsAccepted = %d, want 1", st.ReadingsAccepted)
	}
}

func TestUpdateTaskPreservesClientIdentity(t *testing.T) {
	s, _ := newTestServer(t)
	spec := validTask()
	spec.ClientID = "cas-9/t"
	id, err := s.SubmitTask(spec, simclock.Epoch, nopSink)
	if err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	if err := s.UpdateTaskParams(id, simclock.Epoch, func(t *Task) {
		t.SpatialDensity = 1
		t.ClientID = "hijack" // mutations cannot rebind identity
	}); err != nil {
		t.Fatalf("UpdateTaskParams: %v", err)
	}
	got, _ := s.Task(id)
	if got.ClientID != "cas-9/t" {
		t.Fatalf("ClientID after update = %q", got.ClientID)
	}
	// The identity still resolves to this task.
	again, err := s.SubmitTask(spec, simclock.Epoch, nopSink)
	if err != nil || again != id {
		t.Fatalf("resubmit after update: id=%s err=%v", again, err)
	}
}
