package client

import (
	"errors"
	"testing"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/sensors"
	"senseaid/internal/wire"
)

func daemonConfig(addr string) DaemonConfig {
	return DaemonConfig{
		Client: Config{
			Addr:       addr,
			DeviceID:   "daemon-dev",
			Position:   geo.CSDepartment,
			BatteryPct: 77,
			Sensors:    []sensors.Type{sensors.Barometer},
		},
		Sampler:      okSampler,
		ReportPeriod: 50 * time.Millisecond,
	}
}

func TestDaemonLifecycle(t *testing.T) {
	srv := newScriptServer(t)
	d, err := StartDaemon(daemonConfig(srv.addr()))
	if err != nil {
		t.Fatalf("StartDaemon: %v", err)
	}

	// The service thread reports on its cadence.
	deadline := time.Now().Add(3 * time.Second)
	for d.Reports() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d reports", d.Reports())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !d.InTail() {
		t.Fatal("recent report should imply inferred tail time")
	}

	// A pushed schedule leads to an upload.
	srv.push(wire.Schedule{RequestID: "task-1#0", Sensor: sensors.Barometer})
	deadline = time.Now().Add(3 * time.Second)
	for d.Uploads() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no uploads; errs=%v", d.Errs())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestDaemonValidation(t *testing.T) {
	if _, err := StartDaemon(DaemonConfig{}); err == nil {
		t.Fatal("nil sampler accepted")
	}
	cfg := daemonConfig("127.0.0.1:1") // nothing listening
	if _, err := StartDaemon(cfg); err == nil {
		t.Fatal("dead server accepted")
	}
}

func TestDaemonSamplerErrorLogged(t *testing.T) {
	srv := newScriptServer(t)
	cfg := daemonConfig(srv.addr())
	cfg.Sampler = func(sensors.Type) (sensors.Reading, error) {
		return sensors.Reading{}, errors.New("hardware fault")
	}
	d, err := StartDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Close() }()

	srv.push(wire.Schedule{RequestID: "task-1#0", Sensor: sensors.Barometer})
	deadline := time.Now().Add(2 * time.Second)
	for len(d.Errs()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sampler error never logged")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if d.Uploads() != 0 {
		t.Fatal("upload happened despite sampler failure")
	}
}

func TestDaemonWithAppMux(t *testing.T) {
	srv := newScriptServer(t)
	d, err := StartDaemon(daemonConfig(srv.addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Close() }()

	// Local apps share the daemon's client through the mux. Installing
	// the mux replaces the daemon's own schedule handler.
	mux, err := NewAppMux(d.Client(), okSampler)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan sensors.Reading, 1)
	if err := mux.RegisterApp("local-app", []sensors.Type{sensors.Barometer}, func(r sensors.Reading) {
		select {
		case got <- r:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := mux.Start(); err != nil {
		t.Fatal(err)
	}

	srv.push(wire.Schedule{RequestID: "task-9#0", Sensor: sensors.Barometer})
	select {
	case r := <-got:
		if r.Sensor != sensors.Barometer {
			t.Fatalf("delivered %v", r.Sensor)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("mux never delivered to the local app")
	}
}
