package core

import (
	"fmt"
	"sort"
	"time"
)

// SelectorConfig holds the scoring weights and hard cutoffs of the device
// selector. The paper uses a linear combination
//
//	Score(i) = alpha*E_i + beta*U_i + gamma*(100-CBL_i) + phi*TTL_i
//
// where lower scores are preferred, plus three hard cutoffs: a cap on how
// often a device may be picked, the user's energy budget, and the user's
// critical battery level.
type SelectorConfig struct {
	// Alpha weighs E_i, the crowdsensing energy (J) already spent.
	Alpha float64
	// Beta weighs U_i, the number of prior selections.
	Beta float64
	// Gamma weighs (100 - CBL_i), the battery deficit.
	Gamma float64
	// Phi weighs TTL_i, seconds since the last radio communication. A
	// small TTL means the radio is likely still in its tail, so the
	// sensed value can ride the tail for free.
	Phi float64
	// Rho weighs (1 - Reliability_i), the data-quality reputation
	// deficit — the paper's pointer that reliable-data work "can be
	// incorporated as another factor in our device selector algorithm".
	// Zero disables the factor.
	Rho float64
	// MaxUses is the hard cutoff on selections per accounting window.
	MaxUses int
	// MinReliability is a hard cutoff: devices scoring below it are
	// disqualified. Zero disables the cutoff.
	MinReliability float64
}

// DefaultSelectorConfig returns weights that make one selection weigh as
// much as ~25 J of spent energy or ~20 battery points, with TTL as the
// tiebreaker among otherwise-equal devices: fairness first (the paper's
// Figure 9 rotation), then opportunism.
func DefaultSelectorConfig() SelectorConfig {
	return SelectorConfig{
		Alpha:   0.04,
		Beta:    1.0,
		Gamma:   0.05,
		Phi:     0.0005,
		MaxUses: 1_000,
	}
}

// Validate checks the weights are usable.
func (c SelectorConfig) Validate() error {
	if c.Alpha < 0 || c.Beta < 0 || c.Gamma < 0 || c.Phi < 0 || c.Rho < 0 {
		return fmt.Errorf("core: selector weights must be non-negative: %+v", c)
	}
	if c.MaxUses <= 0 {
		return fmt.Errorf("core: selector MaxUses must be positive, got %d", c.MaxUses)
	}
	if c.MinReliability < 0 || c.MinReliability > 1 {
		return fmt.Errorf("core: MinReliability %v out of [0,1]", c.MinReliability)
	}
	return nil
}

// Selector ranks and picks devices for requests.
type Selector struct {
	cfg SelectorConfig
}

// NewSelector builds a selector.
func NewSelector(cfg SelectorConfig) (*Selector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Selector{cfg: cfg}, nil
}

// Score computes the paper's scoring function for one device at an
// instant; lower is better.
func (s *Selector) Score(d DeviceState, now time.Time) float64 {
	ttl := now.Sub(d.LastComm).Seconds()
	if ttl < 0 {
		ttl = 0
	}
	return s.cfg.Alpha*d.EnergySpentJ +
		s.cfg.Beta*float64(d.TimesUsed) +
		s.cfg.Gamma*(100-d.BatteryPct) +
		s.cfg.Phi*ttl +
		s.cfg.Rho*(1-d.Reliability)
}

// DisqualifyReason explains why a device is not qualified for a request.
type DisqualifyReason string

// Reasons a device fails qualification — the paper's two headline causes
// (out of region, missing/invalid sensor) plus the hard cutoffs.
const (
	ReasonOutOfRegion     DisqualifyReason = "out of task region"
	ReasonNoSensor        DisqualifyReason = "required sensor missing"
	ReasonWrongDeviceType DisqualifyReason = "device type mismatch"
	ReasonOverBudget      DisqualifyReason = "energy budget exhausted"
	ReasonLowBattery      DisqualifyReason = "battery below critical level"
	ReasonOverused        DisqualifyReason = "selection cap reached"
	ReasonUnresponsive    DisqualifyReason = "device unresponsive"
	ReasonUnreliable      DisqualifyReason = "reliability below minimum"
)

// Qualify splits devices into those eligible for the request and, for the
// rest, the reason they were excluded.
func (s *Selector) Qualify(req Request, devices []DeviceState) (qualified []DeviceState, excluded map[string]DisqualifyReason) {
	excluded = make(map[string]DisqualifyReason)
	for _, d := range devices {
		switch {
		case !d.Responsive:
			excluded[d.ID] = ReasonUnresponsive
		case !req.Task.Area.Contains(d.Position):
			excluded[d.ID] = ReasonOutOfRegion
		case !d.HasSensor(req.Task.Sensor):
			excluded[d.ID] = ReasonNoSensor
		case req.Task.DeviceType != "" && d.DeviceType != req.Task.DeviceType:
			excluded[d.ID] = ReasonWrongDeviceType
		case d.TimesUsed >= s.cfg.MaxUses:
			excluded[d.ID] = ReasonOverused
		case d.EnergySpentJ >= d.Budget.TotalJ:
			excluded[d.ID] = ReasonOverBudget
		case d.BatteryPct <= d.Budget.CriticalBatteryPct:
			excluded[d.ID] = ReasonLowBattery
		case s.cfg.MinReliability > 0 && d.Reliability < s.cfg.MinReliability:
			excluded[d.ID] = ReasonUnreliable
		default:
			qualified = append(qualified, d)
		}
	}
	return qualified, excluded
}

// ErrNotEnoughDevices reports an unsatisfiable request: fewer qualified
// devices than the task's spatial density.
type ErrNotEnoughDevices struct {
	Request   string
	Want, Got int
}

// Error implements error.
func (e *ErrNotEnoughDevices) Error() string {
	return fmt.Sprintf("core: request %s needs %d devices, only %d qualified", e.Request, e.Want, e.Got)
}

// Select picks the request's spatial-density-many best devices from the
// qualified set (lowest score first; ties broken by device ID so runs are
// deterministic). It returns ErrNotEnoughDevices when n > N.
func (s *Selector) Select(req Request, devices []DeviceState, now time.Time) ([]DeviceState, error) {
	qualified, _ := s.Qualify(req, devices)
	n := req.Task.SpatialDensity
	if n > len(qualified) {
		return nil, &ErrNotEnoughDevices{Request: req.ID(), Want: n, Got: len(qualified)}
	}
	sort.Slice(qualified, func(i, j int) bool {
		si, sj := s.Score(qualified[i], now), s.Score(qualified[j], now)
		if si != sj {
			return si < sj
		}
		return qualified[i].ID < qualified[j].ID
	})
	return qualified[:n], nil
}
