package privacy

import (
	"strings"
	"testing"
	"testing/quick"
)

var salt = []byte("campus-deployment-salt")

func TestHashIMEI(t *testing.T) {
	h1, err := HashIMEI("356938035643809", salt)
	if err != nil {
		t.Fatalf("HashIMEI: %v", err)
	}
	if len(h1) != 64 {
		t.Fatalf("hash length = %d, want 64 hex chars", len(h1))
	}
	if strings.Contains(h1, "356938") {
		t.Fatal("hash leaks IMEI digits")
	}
	h2, err := HashIMEI("356938035643809", salt)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("hash not deterministic")
	}
	h3, err := HashIMEI("356938035643810", salt)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h3 {
		t.Fatal("different IMEIs collide")
	}
	h4, err := HashIMEI("356938035643809", []byte("another-salt-value"))
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h4 {
		t.Fatal("different salts produce identical hashes")
	}
}

func TestHashIMEIValidation(t *testing.T) {
	if _, err := HashIMEI("", salt); err == nil {
		t.Fatal("empty IMEI accepted")
	}
	if _, err := HashIMEI("123", []byte("short")); err == nil {
		t.Fatal("short salt accepted")
	}
}

func TestPseudonymStableWithinTask(t *testing.T) {
	p, err := NewPseudonymizer([]byte("server-secret-key"))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p.Pseudonym("task-1", "dev-a")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p.Pseudonym("task-1", "dev-a")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("pseudonym not stable within a task")
	}
	if !strings.HasPrefix(a1, "anon-") {
		t.Fatalf("pseudonym %q not anon-prefixed", a1)
	}
	if strings.Contains(a1, "dev-a") {
		t.Fatal("pseudonym leaks device ID")
	}
}

func TestPseudonymUnlinkableAcrossTasks(t *testing.T) {
	p, err := NewPseudonymizer([]byte("server-secret-key"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Pseudonym("task-1", "dev-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Pseudonym("task-2", "dev-a")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("same pseudonym across tasks links the device")
	}
}

func TestResolveAndForget(t *testing.T) {
	p, err := NewPseudonymizer([]byte("server-secret-key"))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := p.Pseudonym("task-1", "dev-a")
	if err != nil {
		t.Fatal(err)
	}
	dev, ok := p.Resolve("task-1", ps)
	if !ok || dev != "dev-a" {
		t.Fatalf("Resolve = %q/%v, want dev-a", dev, ok)
	}
	if _, ok := p.Resolve("task-2", ps); ok {
		t.Fatal("resolved a pseudonym under the wrong task")
	}
	p.Forget("task-1")
	if _, ok := p.Resolve("task-1", ps); ok {
		t.Fatal("resolved after Forget")
	}
	if got := p.IssuedFor("task-1"); len(got) != 0 {
		t.Fatalf("IssuedFor after Forget = %v", got)
	}
}

func TestPseudonymizerValidation(t *testing.T) {
	if _, err := NewPseudonymizer([]byte("short")); err == nil {
		t.Fatal("short secret accepted")
	}
	p, err := NewPseudonymizer([]byte("server-secret-key"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pseudonym("", "dev"); err == nil {
		t.Fatal("empty task ID accepted")
	}
	if _, err := p.Pseudonym("task", ""); err == nil {
		t.Fatal("empty device ID accepted")
	}
}

// Property: pseudonyms never collide across distinct devices within a
// task, and always collide for the same device.
func TestPseudonymCollisionProperty(t *testing.T) {
	p, err := NewPseudonymizer([]byte("server-secret-key"))
	if err != nil {
		t.Fatal(err)
	}
	f := func(devA, devB string) bool {
		if devA == "" || devB == "" {
			return true
		}
		a, err := p.Pseudonym("t", devA)
		if err != nil {
			return false
		}
		b, err := p.Pseudonym("t", devB)
		if err != nil {
			return false
		}
		if devA == devB {
			return a == b
		}
		return a != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
