#!/bin/sh
# CI gate: vet, build, the full test suite under the race detector, and a
# one-iteration benchmark smoke pass (catches benchmarks that no longer
# compile or crash without timing anything).
# Run from the repository root. Keep this the single command a contributor
# needs before pushing.
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -bench . -benchtime 1x ./...
# Fault-injection smoke: the resilience suites (stalled peers, flaky
# links, server restart) in short mode, so a quick pre-push run still
# exercises the failure paths end to end.
go test -race -short -run 'Fault|Stall|Resilien|Reconnect|Restart|Idle|Flaky' \
    ./internal/faultconn ./internal/wire ./internal/netserver ./internal/client

# Selection benchmark record: measures the indexed hot path against the
# pre-index full scan (1k/10k/100k devices, 1% region), writes
# BENCH_selection.json, and FAILS on an allocation-budget or speedup-ratio
# regression (see TestRecordSelectionBench).
SENSEAID_BENCH_OUT="$PWD/BENCH_selection.json" \
    go test -run '^TestRecordSelectionBench$' -count=1 -v ./internal/core

# Crash-restart smoke: kill -9 durability end to end. The in-process
# suite (abrupt-close fidelity, campaign resume, sharded recovery,
# corrupt-state refusal, randomized crash soak under fault injection)
# runs under the race detector; the binary test SIGKILLs a real
# senseaidd mid-campaign and requires the restart to reclaim the task.
go test -race -count=1 \
    -run 'CrashRecovery|CorruptState|TornJournal|CrashRestartSoak' \
    ./internal/netserver
go test -count=1 -run '^TestCrashRestartBinaryEndToEnd$' .

# Tracing benchmark record: measures span start/finish on the sampled
# and unsampled paths, writes BENCH_obs.json, and FAILS when the
# unsampled fast path allocates (the tracing tax on untraced requests
# must stay zero-alloc; see TestRecordObsBench).
SENSEAID_BENCH_OUT="$PWD/BENCH_obs.json" \
    go test -run '^TestRecordObsBench$' -count=1 -v ./internal/obs

# Wire benchmark record: measures encode+frame+read+decode for the hot
# schedule/upload shapes under the JSON and binary codecs plus the write
# coalescer's syscall batching, writes BENCH_wire.json, and FAILS when
# binary loses its 2x frame-size edge, stops allocating less than JSON,
# or coalescing stops halving write syscalls (see TestRecordWireBench).
SENSEAID_BENCH_OUT="$PWD/BENCH_wire.json" \
    go test -run '^TestRecordWireBench$' -count=1 -v ./internal/wire

# Recovery benchmark record: replays a 10k-record journal at boot,
# writes BENCH_recovery.json, and FAILS when recovery exceeds its
# wall-clock budget (see TestRecordRecoveryBench).
SENSEAID_BENCH_OUT="$PWD/BENCH_recovery.json" \
    go test -run '^TestRecordRecoveryBench$' -count=1 -v ./internal/netserver

# Cluster benchmark record: runs the same steady-state campaign against
# a worker directly and through the router tier, writes
# BENCH_cluster.json (delivery p99 both ways, selections/sec through the
# router), and FAILS when the routed p99 costs more than 2x the direct
# path's (see TestRecordClusterBench).
SENSEAID_BENCH_OUT="$PWD/BENCH_cluster.json" \
    go test -run '^TestRecordClusterBench$' -count=1 -v .

# Aggregation benchmark record: drives the streaming tier through the
# core's delivery tap, writes BENCH_agg.json, and FAILS below 1M
# uploads/min, on any per-upload allocation on the hot tap, on
# unbounded series memory, or when push lag p99 reaches one window
# (see TestRecordAggBench).
SENSEAID_BENCH_OUT="$PWD/BENCH_agg.json" \
    go test -run '^TestRecordAggBench$' -count=1 -v ./internal/agg

# City-scale chaos soak: the seeded city-wide campaign (tower outage
# waves, primary SIGKILL + journal recovery, byzantine and clock-skewed
# reporters, a flash crowd, CAS storms) against the real sharded core,
# with the shared invariant suite checked at the quiesce point — any
# violation FAILS the gate and the message carries the scenario seed, so
# a red soak reproduces from one integer. Records steady-state
# selections/sec and dispatch p99 into BENCH_city.json. The pre-push
# default runs 10k simulated devices (time-boxed); SENSEAID_CHAOS=full
# runs the 100k acceptance soak. SENSEAID_CHAOS_DEVICES overrides both.
chaos_devices=10000
if [ "${SENSEAID_CHAOS:-}" = "full" ]; then
    chaos_devices=100000
fi
SENSEAID_BENCH_OUT="$PWD/BENCH_city.json" \
    SENSEAID_CHAOS_DEVICES="${SENSEAID_CHAOS_DEVICES:-$chaos_devices}" \
    go test -run '^TestRecordCityBench$' -count=1 -v -timeout 30m ./internal/chaos

# Shared-tier scenario: 100 concurrent campaigns on one cohort and one
# aggregation tier; every campaign's streamed windows must match the
# post-hoc batch computation exactly.
go test -count=1 -run '^TestHundredCampaignSharedAggregationTier$' ./internal/sim

# Multi-node failover smoke: a real router fronting a real primary with
# a journal-shipping standby; the primary is SIGKILLed mid-campaign and
# the standby must promote, re-enroll, and finish the campaign with zero
# duplicate deliveries and every device session reconnected.
go test -count=1 -run '^TestClusterFailoverEndToEnd$' .

# Loadgen smoke: 1k real device connections against a freshly built
# senseaidd over the wire protocol, bounded duration; fails if any
# registration fails or no schedule is delivered.
tmp=$(mktemp -d)
trap 'kill $srv_pid 2>/dev/null || true; rm -rf "$tmp"' EXIT INT TERM
go build -o "$tmp/senseaidd" ./cmd/senseaidd
go build -o "$tmp/senseaid-loadgen" ./cmd/senseaid-loadgen
"$tmp/senseaidd" -addr 127.0.0.1:0 -tick 100ms > "$tmp/senseaidd.out" &
srv_pid=$!
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^sense-aid server listening on //p' "$tmp/senseaidd.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ]
"$tmp/senseaid-loadgen" -addr "$addr" -devices 1000 -duration 5s \
    -tasks 4 -density 5 -period 1s -min-selections 1
kill $srv_pid 2>/dev/null || true

# Wire v2 smoke: 5k device connections speaking the binary codec against
# a server with write coalescing and a bounded RPC worker pool — the
# production transport configuration at 5x the plain smoke's scale.
# A tenth of the fleet rides faulty links (staggered mid-run connection
# kills plus added latency) and 5% answers with wrong-sensor garbage:
# the run fails if the server accepts a single garbage upload or a
# healthy-link registration fails.
"$tmp/senseaidd" -addr 127.0.0.1:0 -tick 100ms \
    -codec binary -coalesce-interval 2ms -rpc-workers 64 > "$tmp/senseaidd2.out" &
srv_pid=$!
addr=
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^sense-aid server listening on //p' "$tmp/senseaidd2.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ]
"$tmp/senseaid-loadgen" -addr "$addr" -devices 5000 -duration 5s \
    -codec binary -tasks 4 -density 5 -period 1s -min-selections 1 \
    -chaos-fraction 0.1 -chaos-drop-writes 20 -chaos-delay 1ms -byzantine 0.05
kill $srv_pid 2>/dev/null || true

# Shared-tier smoke: a real senseaid-cas subscribes to its own
# campaign's live aggregation windows against a server under loadgen
# traffic, and exits success only after a closed window actually
# arrives (senseaid-cas -subscribe fails on a windowless deadline).
go build -o "$tmp/senseaid-cas" ./cmd/senseaid-cas
"$tmp/senseaidd" -addr 127.0.0.1:0 -tick 100ms -agg-window 2s > "$tmp/senseaidd3.out" &
srv_pid=$!
addr=
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^sense-aid server listening on //p' "$tmp/senseaidd3.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ]
"$tmp/senseaid-loadgen" -addr "$addr" -devices 50 -duration 15s \
    -tasks 1 -density 2 -period 1s -min-selections 1 &
load_pid=$!
"$tmp/senseaid-cas" -addr "$addr" -period 1s -duration 15s -density 2 -subscribe
wait $load_pid
kill $srv_pid 2>/dev/null || true
