package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClosed is returned by RPC calls on a closed connection.
var ErrClosed = errors.New("wire: connection closed")

// DefaultCallTimeout bounds a request/response exchange.
const DefaultCallTimeout = 10 * time.Second

// RPCConn layers request/response and push-message handling over a framed
// connection. The device client and the CAS library both build on it.
type RPCConn struct {
	nc      net.Conn
	timeout time.Duration

	writeMu sync.Mutex

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]chan Envelope
	closed  bool

	// push receives non-response messages (schedules, sensed data).
	push func(Envelope)

	wg sync.WaitGroup
}

// NewRPCConn wraps an established connection and performs the Hello
// handshake for the given role. push receives server-initiated messages
// and is called from the read loop (handlers must not block).
func NewRPCConn(nc net.Conn, role Role, push func(Envelope)) (*RPCConn, error) {
	c := &RPCConn{
		nc:      nc,
		timeout: DefaultCallTimeout,
		pending: make(map[uint64]chan Envelope),
		push:    push,
	}
	// Handshake synchronously, before the read loop starts.
	env, err := Encode(TypeHello, 0, Hello{Role: role, Version: ProtocolVersion})
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(nc, env); err != nil {
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	resp, err := ReadFrame(nc)
	if err != nil {
		return nil, fmt.Errorf("wire: hello response: %w", err)
	}
	if resp.Type == TypeError {
		var e Error
		_ = Decode(resp, &e)
		return nil, fmt.Errorf("wire: server rejected hello: %s", e.Message)
	}
	if resp.Type != TypeAck {
		return nil, fmt.Errorf("wire: unexpected hello response %s", resp.Type)
	}

	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// Call sends a request and waits for its Ack (returned) or Error
// (converted to a Go error).
func (c *RPCConn) Call(t MsgType, payload interface{}) (Ack, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Ack{}, ErrClosed
	}
	c.nextSeq++
	seq := c.nextSeq
	ch := make(chan Envelope, 1)
	c.pending[seq] = ch
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
	}()

	env, err := Encode(t, seq, payload)
	if err != nil {
		return Ack{}, err
	}
	c.writeMu.Lock()
	err = WriteFrame(c.nc, env)
	c.writeMu.Unlock()
	if err != nil {
		return Ack{}, fmt.Errorf("wire: send %s: %w", t, err)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return Ack{}, ErrClosed
		}
		if resp.Type == TypeError {
			var e Error
			_ = Decode(resp, &e)
			return Ack{}, fmt.Errorf("wire: %s: %s", t, e.Message)
		}
		var ack Ack
		if len(resp.Payload) > 0 {
			if err := Decode(resp, &ack); err != nil {
				return Ack{}, err
			}
		}
		return ack, nil
	case <-time.After(c.timeout):
		return Ack{}, fmt.Errorf("wire: %s: timeout after %v", t, c.timeout)
	}
}

// Notify sends a message without waiting for a response.
func (c *RPCConn) Notify(t MsgType, payload interface{}) error {
	env, err := Encode(t, 0, payload)
	if err != nil {
		return err
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WriteFrame(c.nc, env)
}

// Close tears the connection down and waits for the read loop.
func (c *RPCConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.nc.Close()
	c.wg.Wait()
	return err
}

func (c *RPCConn) readLoop() {
	defer c.wg.Done()
	for {
		env, err := ReadFrame(c.nc)
		if err != nil {
			c.mu.Lock()
			c.closed = true
			for seq, ch := range c.pending {
				close(ch)
				delete(c.pending, seq)
			}
			c.mu.Unlock()
			return
		}
		if env.Seq != 0 && (env.Type == TypeAck || env.Type == TypeError) {
			c.mu.Lock()
			ch, ok := c.pending[env.Seq]
			c.mu.Unlock()
			if ok {
				ch <- env
			}
			continue
		}
		if c.push != nil {
			c.push(env)
		}
	}
}
