// Package sensors defines the sensor vocabulary of Table 1's sensor_type
// parameter, the per-sensor power table the paper quotes from Warden '15,
// and a synthetic barometric pressure field so end-to-end runs carry
// plausible data. Sensor values never influence energy results; they only
// flow through the pipeline so examples and integration tests exercise the
// full data path.
package sensors

import (
	"fmt"
	"math"
	"time"

	"senseaid/internal/geo"
)

// Type identifies a sensor, mirroring the Android sensor taxonomy the
// paper's Table 1 references.
type Type int

// Sensor types supported by the framework. The user study uses only the
// barometer; the rest exist so multi-sensor campaigns can be expressed.
const (
	Accelerometer Type = iota + 1
	Gyroscope
	Barometer
	GPS
	Microphone
	Magnetometer
	Thermometer
	Hygrometer
	LightMeter
)

// String returns the sensor's name.
func (t Type) String() string {
	switch t {
	case Accelerometer:
		return "accelerometer"
	case Gyroscope:
		return "gyroscope"
	case Barometer:
		return "barometer"
	case GPS:
		return "gps"
	case Microphone:
		return "microphone"
	case Magnetometer:
		return "magnetometer"
	case Thermometer:
		return "thermometer"
	case Hygrometer:
		return "hygrometer"
	case LightMeter:
		return "light"
	default:
		return fmt.Sprintf("sensor(%d)", int(t))
	}
}

// Valid reports whether t names a known sensor.
func (t Type) Valid() bool { return t >= Accelerometer && t <= LightMeter }

// PowerW returns the sensor's active power draw in watts. The values for
// accelerometer, gyroscope, barometer, GPS and microphone are the Samsung
// Galaxy S4 numbers the paper quotes (21, 130, 110, 176, 101 mW); the rest
// are filled in from the same source's ballpark.
func (t Type) PowerW() float64 {
	switch t {
	case Accelerometer:
		return 0.021
	case Gyroscope:
		return 0.130
	case Barometer:
		return 0.110
	case GPS:
		return 0.176
	case Microphone:
		return 0.101
	case Magnetometer:
		return 0.048
	case Thermometer:
		return 0.030
	case Hygrometer:
		return 0.030
	case LightMeter:
		return 0.015
	default:
		return 0
	}
}

// SampleDuration returns how long one sample keeps the sensor powered.
// GPS needs a multi-second fix; inertial and environmental sensors settle
// in well under a second.
func (t Type) SampleDuration() time.Duration {
	switch t {
	case GPS:
		return 8 * time.Second
	case Microphone:
		return 2 * time.Second
	default:
		return 500 * time.Millisecond
	}
}

// SampleEnergyJ is the energy of a single sample of this sensor.
func (t Type) SampleEnergyJ() float64 {
	return t.PowerW() * t.SampleDuration().Seconds()
}

// Unit returns the measurement unit reported for the sensor.
func (t Type) Unit() string {
	switch t {
	case Barometer:
		return "hPa"
	case Thermometer:
		return "degC"
	case Hygrometer:
		return "%RH"
	case Accelerometer, Gyroscope:
		return "SI"
	case Microphone:
		return "dB"
	case Magnetometer:
		return "uT"
	case LightMeter:
		return "lux"
	case GPS:
		return "deg"
	default:
		return ""
	}
}

// Reading is one sensed value from one device.
type Reading struct {
	Sensor Type      `json:"sensor"`
	Value  float64   `json:"value"`
	Unit   string    `json:"unit"`
	At     time.Time `json:"at"`
	Where  geo.Point `json:"where"`
}

// PressureField is a smooth synthetic barometric field over campus
// coordinates: a base pressure plus a gentle spatial gradient and a slow
// diurnal oscillation, with an optional storm front (a rapid pressure
// fall, the event Pressurenet-class apps exist to catch). It stands in
// for the real atmosphere the study sampled (the substitution documented
// in DESIGN.md).
type PressureField struct {
	// BaseHPa is the mean sea-level-ish pressure.
	BaseHPa float64
	// Origin anchors the spatial gradient.
	Origin geo.Point

	// StormOnset, if non-zero, starts a pressure fall at that instant.
	StormOnset time.Time
	// StormDepthHPa is how far pressure falls during the storm.
	StormDepthHPa float64
	// StormRamp is how long the fall takes (default 30 min).
	StormRamp time.Duration
}

// NewPressureField returns a calm field centred on campus.
func NewPressureField() *PressureField {
	return &PressureField{BaseHPa: 1013.25, Origin: geo.CampusCenter()}
}

// NewStormField returns a field in which pressure drops depthHPa starting
// at onset, over ramp (30 minutes if zero) — the synthetic weather event
// adaptive campaigns react to.
func NewStormField(onset time.Time, depthHPa float64, ramp time.Duration) *PressureField {
	f := NewPressureField()
	f.StormOnset = onset
	f.StormDepthHPa = depthHPa
	f.StormRamp = ramp
	return f
}

// At returns the pressure at a place and time.
func (f *PressureField) At(p geo.Point, at time.Time) float64 {
	// ~0.3 hPa of spatial variation across a kilometre, plus a 1.5 hPa
	// diurnal swing — the scale real hyperlocal weather maps care about.
	northM := geo.DistanceM(f.Origin, geo.Point{Lat: p.Lat, Lon: f.Origin.Lon})
	if p.Lat < f.Origin.Lat {
		northM = -northM
	}
	spatial := 0.0003 * northM
	hours := at.Sub(at.Truncate(24 * time.Hour)).Hours()
	diurnal := 1.5 * math.Sin(2*math.Pi*hours/24)
	return f.BaseHPa + spatial + diurnal - f.stormDrop(at)
}

// stormDrop returns how much the storm has depressed the field at t.
func (f *PressureField) stormDrop(at time.Time) float64 {
	if f.StormOnset.IsZero() || f.StormDepthHPa == 0 || at.Before(f.StormOnset) {
		return 0
	}
	ramp := f.StormRamp
	if ramp <= 0 {
		ramp = 30 * time.Minute
	}
	frac := at.Sub(f.StormOnset).Seconds() / ramp.Seconds()
	if frac > 1 {
		frac = 1
	}
	return f.StormDepthHPa * frac
}

// Sample produces a barometer Reading at a place and time.
func (f *PressureField) Sample(p geo.Point, at time.Time) Reading {
	return Reading{
		Sensor: Barometer,
		Value:  f.At(p, at),
		Unit:   Barometer.Unit(),
		At:     at,
		Where:  p,
	}
}
