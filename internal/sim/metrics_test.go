package sim

import (
	"testing"
	"time"

	"senseaid/internal/obs"
)

// seriesValue returns the counter value for name{labels...} from a
// snapshot, or -1 if the series does not exist.
func seriesValue(reg *obs.Registry, name string, labels obs.Labels) float64 {
	for _, fam := range reg.Snapshot() {
		if fam.Name != name {
			continue
		}
	series:
		for _, s := range fam.Series {
			for k, v := range labels {
				if s.Labels[k] != v {
					continue series
				}
			}
			if s.Value != nil {
				return *s.Value
			}
		}
	}
	return -1
}

// TestSimMetricsMatchUploadStats asserts the sim reports its uploads under
// the exact series a live deployment exposes, and that the values agree
// with the RunResult breakdown the figures are built from.
func TestSimMetricsMatchUploadStats(t *testing.T) {
	reg := obs.NewRegistry()
	task := studyTask(1000, 10*time.Minute, 2, 90*time.Minute)
	res := runFramework(t, SenseAid{Metrics: reg}, 1, task)

	if got := seriesValue(reg, "senseaid_uploads_total", obs.Labels{"path": "tail"}); got != float64(res.Uploads.Piggybacked) {
		t.Errorf("uploads_total{path=tail} = %v, RunResult piggybacked = %d", got, res.Uploads.Piggybacked)
	}
	if got := seriesValue(reg, "senseaid_uploads_total", obs.Labels{"path": "promoted"}); got != float64(res.Uploads.Forced) {
		t.Errorf("uploads_total{path=promoted} = %v, RunResult forced = %d", got, res.Uploads.Forced)
	}
	if got := seriesValue(reg, "senseaid_uploads_total", obs.Labels{"path": "batched"}); got != float64(res.Uploads.Batched) {
		t.Errorf("uploads_total{path=batched} = %v, RunResult batched = %d", got, res.Uploads.Batched)
	}
	// The embedded scheduling core lands on the same registry, exactly as
	// netserver arranges for a live run.
	if got := seriesValue(reg, "senseaid_requests_total", obs.Labels{"outcome": "satisfied"}); got < 1 {
		t.Errorf("core satisfied series = %v, want >= 1 on the shared registry", got)
	}
}

// TestBaselineMetrics spot-checks that the baselines report on the same
// vocabulary, so comparative dashboards need no per-framework names.
func TestBaselineMetrics(t *testing.T) {
	task := studyTask(1000, 10*time.Minute, 2, 60*time.Minute)

	regP := obs.NewRegistry()
	resP := runFramework(t, Periodic{Metrics: regP}, 1, task)
	if got := seriesValue(regP, "senseaid_uploads_total", obs.Labels{"path": "promoted"}); got != float64(resP.Uploads.Forced) {
		t.Errorf("periodic promoted = %v, want %d", got, resP.Uploads.Forced)
	}

	regC := obs.NewRegistry()
	resC := runFramework(t, PCS{Metrics: regC}, 1, task)
	total := seriesValue(regC, "senseaid_uploads_total", obs.Labels{"path": "tail"}) +
		seriesValue(regC, "senseaid_uploads_total", obs.Labels{"path": "promoted"})
	if total != float64(resC.Uploads.Piggybacked+resC.Uploads.Forced) {
		t.Errorf("pcs uploads on registry = %v, RunResult = %d", total, resC.Uploads.Piggybacked+resC.Uploads.Forced)
	}
}
