package sensors

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"senseaid/internal/geo"
)

func TestPaperPowerNumbers(t *testing.T) {
	// Warden '15 values quoted in the paper (mW).
	want := map[Type]float64{
		Accelerometer: 0.021,
		Gyroscope:     0.130,
		Barometer:     0.110,
		GPS:           0.176,
		Microphone:    0.101,
	}
	for typ, w := range want {
		if got := typ.PowerW(); got != w {
			t.Errorf("%s power = %v W, want %v W", typ, got, w)
		}
	}
}

func TestAllTypesHaveMetadata(t *testing.T) {
	for typ := Accelerometer; typ <= LightMeter; typ++ {
		if !typ.Valid() {
			t.Errorf("%d should be valid", typ)
		}
		if typ.PowerW() <= 0 {
			t.Errorf("%s has no power figure", typ)
		}
		if typ.SampleDuration() <= 0 {
			t.Errorf("%s has no sample duration", typ)
		}
		if typ.SampleEnergyJ() <= 0 {
			t.Errorf("%s has no sample energy", typ)
		}
		if typ.String() == "" {
			t.Errorf("%d has no name", typ)
		}
	}
	if Type(0).Valid() || Type(99).Valid() {
		t.Error("out-of-range types must be invalid")
	}
	if Type(0).PowerW() != 0 {
		t.Error("invalid type should have zero power")
	}
}

func TestGPSIsExpensive(t *testing.T) {
	// The paper's design avoids GPS on clients because tower-granularity
	// location is free; the energy model must reflect why that matters.
	if GPS.SampleEnergyJ() <= Barometer.SampleEnergyJ()*5 {
		t.Fatalf("GPS sample (%.3f J) should dwarf a barometer sample (%.3f J)",
			GPS.SampleEnergyJ(), Barometer.SampleEnergyJ())
	}
}

func TestPressureFieldPlausible(t *testing.T) {
	f := NewPressureField()
	at := time.Date(2017, 12, 11, 12, 0, 0, 0, time.UTC)
	for _, loc := range geo.CampusLocations() {
		p := f.At(loc.Point, at)
		if p < 990 || p > 1040 {
			t.Errorf("pressure at %s = %.2f hPa, outside plausible range", loc.Name, p)
		}
	}
}

func TestPressureFieldVariesInSpaceAndTime(t *testing.T) {
	f := NewPressureField()
	at := time.Date(2017, 12, 11, 6, 0, 0, 0, time.UTC)
	north := geo.Offset(geo.CampusCenter(), 1000, 0)
	south := geo.Offset(geo.CampusCenter(), -1000, 0)
	if f.At(north, at) == f.At(south, at) {
		t.Error("field should vary with latitude")
	}
	later := at.Add(6 * time.Hour)
	if f.At(north, at) == f.At(north, later) {
		t.Error("field should vary over the day")
	}
}

// Property: the field is smooth — two points within 50 m differ by under
// 0.1 hPa at the same instant.
func TestPressureFieldSmoothProperty(t *testing.T) {
	f := NewPressureField()
	at := time.Date(2017, 12, 11, 15, 0, 0, 0, time.UTC)
	prop := func(n8, e8 int8) bool {
		base := geo.Offset(geo.CampusCenter(), float64(n8), float64(e8))
		near := geo.Offset(base, 25, 25)
		return math.Abs(f.At(base, at)-f.At(near, at)) < 0.1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleReading(t *testing.T) {
	f := NewPressureField()
	at := time.Date(2017, 12, 11, 9, 30, 0, 0, time.UTC)
	r := f.Sample(geo.CSDepartment, at)
	if r.Sensor != Barometer {
		t.Fatalf("reading sensor = %v, want barometer", r.Sensor)
	}
	if r.Unit != "hPa" {
		t.Fatalf("reading unit = %q, want hPa", r.Unit)
	}
	if !r.At.Equal(at) || r.Where != geo.CSDepartment {
		t.Fatal("reading does not carry its place and time")
	}
	if r.Value != f.At(geo.CSDepartment, at) {
		t.Fatal("reading value disagrees with field")
	}
}

func TestStringAndUnitExhaustive(t *testing.T) {
	names := map[Type]string{
		Accelerometer: "accelerometer",
		Gyroscope:     "gyroscope",
		Barometer:     "barometer",
		GPS:           "gps",
		Microphone:    "microphone",
		Magnetometer:  "magnetometer",
		Thermometer:   "thermometer",
		Hygrometer:    "hygrometer",
		LightMeter:    "light",
	}
	units := map[Type]string{
		Accelerometer: "SI",
		Gyroscope:     "SI",
		Barometer:     "hPa",
		GPS:           "deg",
		Microphone:    "dB",
		Magnetometer:  "uT",
		Thermometer:   "degC",
		Hygrometer:    "%RH",
		LightMeter:    "lux",
	}
	for typ, want := range names {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(typ), got, want)
		}
	}
	for typ, want := range units {
		if got := typ.Unit(); got != want {
			t.Errorf("%s.Unit() = %q, want %q", typ, got, want)
		}
	}
	if Type(99).String() != "sensor(99)" {
		t.Error("unknown type name")
	}
	if Type(99).Unit() != "" {
		t.Error("unknown type unit")
	}
	if Type(99).SampleDuration() != 500*time.Millisecond {
		t.Error("unknown type sample duration default")
	}
}

func TestSampleDurations(t *testing.T) {
	if GPS.SampleDuration() != 8*time.Second {
		t.Errorf("GPS duration = %v", GPS.SampleDuration())
	}
	if Microphone.SampleDuration() != 2*time.Second {
		t.Errorf("microphone duration = %v", Microphone.SampleDuration())
	}
	if Barometer.SampleDuration() != 500*time.Millisecond {
		t.Errorf("barometer duration = %v", Barometer.SampleDuration())
	}
}

func TestStormFieldDefaults(t *testing.T) {
	f := NewStormField(time.Date(2017, 12, 11, 10, 0, 0, 0, time.UTC), 20, 0)
	onset := f.StormOnset
	// Default 30-minute ramp: full depth reached at onset+30min.
	before := f.At(geo.CSDepartment, onset.Add(-time.Minute))
	full := f.At(geo.CSDepartment, onset.Add(31*time.Minute))
	drop := before - full
	if drop < 18 || drop > 22 {
		t.Fatalf("default-ramp drop = %.1f, want ~20", drop)
	}
	// Calm field has no storm component.
	calm := NewPressureField()
	if calm.stormDrop(onset.Add(time.Hour)) != 0 {
		t.Fatal("calm field has a storm drop")
	}
}
