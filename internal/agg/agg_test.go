package agg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/sensors"
	"senseaid/internal/simclock"
)

func reading(at time.Time, v float64, p geo.Point) sensors.Reading {
	return sensors.Reading{Sensor: sensors.Barometer, Value: v, Unit: "hPa", At: at, Where: p}
}

// collect subscribes with f and returns the sink slice windows land in.
func collect(t *Tier, f Filter) *[]Window {
	var got []Window
	t.Subscribe(f, func(p Push) { got = append(got, p.Windows...) })
	return &got
}

// driveSamples feeds samples in timestamp order, advancing the tier's
// clock past each sample so windows close on the tick cadence the real
// server uses.
func driveSamples(tier *Tier, clk *simclock.FakeClock, samples []Sample) {
	for _, s := range samples {
		if d := s.Reading.At.Sub(clk.Now()); d > 0 {
			clk.Advance(d)
			tier.Advance(clk.Now())
		}
		tier.Ingest(s.Task, s.Region, s.Reading)
	}
	// Flush the final windows.
	for i := 0; i < 8; i++ {
		clk.Advance(tier.Window())
		tier.Advance(clk.Now())
	}
}

func TestTumblingWindowsMatchBatch(t *testing.T) {
	cfg := Config{Window: time.Minute, Retention: 5, CellSizeM: 500}
	clk := simclock.NewFakeClock(simclock.Epoch)
	cfg.Clock = clk
	tier := New(cfg)
	got := collect(tier, Filter{})

	rng := rand.New(rand.NewSource(7))
	var samples []Sample
	at := simclock.Epoch
	for i := 0; i < 2000; i++ {
		at = at.Add(time.Duration(rng.Intn(2000)) * time.Millisecond)
		task := []string{"west/task-1", "west/task-2", "east/task-1"}[rng.Intn(3)]
		region := task[:4]
		p := geo.Point{Lat: 40 + rng.Float64()*0.02, Lon: -86 - rng.Float64()*0.02}
		samples = append(samples, Sample{
			Task:    task,
			Region:  region,
			Reading: reading(at, 950+rng.Float64()*100, p),
		})
	}
	driveSamples(tier, clk, samples)

	want := Batch(samples, cfg)
	SortWindows(*got)
	if len(*got) != len(want) {
		t.Fatalf("streamed %d windows, batch computed %d", len(*got), len(want))
	}
	for i := range want {
		g, w := (*got)[i], want[i]
		if g.Key != w.Key || !g.Start.Equal(w.Start) || !g.End.Equal(w.End) {
			t.Fatalf("window %d: streamed %+v != batch %+v", i, g.Key, w.Key)
		}
		if g.Count != w.Count || g.Min != w.Min || g.Max != w.Max ||
			math.Abs(g.Sum-w.Sum) > 1e-9 || g.P50 != w.P50 || g.P99 != w.P99 ||
			g.Freshness != w.Freshness {
			t.Fatalf("window %d %v: streamed %+v != batch %+v", i, g.Key, g, w)
		}
	}
}

func TestSlidingWindowMergesSpan(t *testing.T) {
	cfg := Config{Window: time.Minute, Retention: 5, CellSizeM: 500}
	clk := simclock.NewFakeClock(simclock.Epoch)
	cfg.Clock = clk
	tier := New(cfg)
	got := collect(tier, Filter{Span: 3, Every: 1})

	p := geo.Point{Lat: 40, Lon: -86}
	// One sample per minute-window, values 1, 2, 3, 4.
	for i := 0; i < 4; i++ {
		at := simclock.Epoch.Add(time.Duration(i)*time.Minute + 10*time.Second)
		for clk.Now().Before(at) {
			clk.Advance(15 * time.Second)
			tier.Advance(clk.Now())
		}
		tier.Ingest("t1", "west", reading(at, float64(i+1), p))
	}
	clk.Advance(2 * time.Minute)
	tier.Advance(clk.Now())

	// Five emissions: one per closed window 0..4 (the span keeps data in
	// view for one window past the last sample).
	if len(*got) != 5 {
		t.Fatalf("want 5 sliding emissions, got %d: %+v", len(*got), *got)
	}
	// The emission at window 3 merges the windows holding values {2,3,4}.
	full := (*got)[3]
	if full.Count != 3 || full.Min != 2 || full.Max != 4 || full.Sum != 9 {
		t.Fatalf("sliding merge wrong: %+v", full)
	}
	if got := full.End.Sub(full.Start); got != 3*time.Minute {
		t.Fatalf("sliding span = %v, want 3m", got)
	}
	// The final emission has only {3,4} left in view.
	if last := (*got)[4]; last.Count != 2 || last.Sum != 7 {
		t.Fatalf("trailing sliding merge wrong: %+v", last)
	}
	// First emission covers only the first window (span clipped by data).
	if (*got)[0].Count != 1 || (*got)[0].Sum != 1 {
		t.Fatalf("first sliding emission wrong: %+v", (*got)[0])
	}
}

func TestCoarseTumblingEveryEqualsSpan(t *testing.T) {
	cfg := Config{Window: time.Minute, Retention: 5, CellSizeM: 500}
	clk := simclock.NewFakeClock(simclock.Epoch)
	cfg.Clock = clk
	tier := New(cfg)
	got := collect(tier, Filter{Span: 2, Every: 2})

	p := geo.Point{Lat: 40, Lon: -86}
	for i := 0; i < 4; i++ {
		at := simclock.Epoch.Add(time.Duration(i)*time.Minute + 5*time.Second)
		for clk.Now().Before(at) {
			clk.Advance(15 * time.Second)
			tier.Advance(clk.Now())
		}
		tier.Ingest("t1", "west", reading(at, float64(i+1), p))
	}
	clk.Advance(3 * time.Minute)
	tier.Advance(clk.Now())

	// Epoch-aligned 2-window cadence: emissions after windows {0,1} and {2,3}.
	if len(*got) != 2 {
		t.Fatalf("want 2 coarse emissions, got %d: %+v", len(*got), *got)
	}
	if (*got)[0].Count != 2 || (*got)[0].Sum != 3 || (*got)[1].Count != 2 || (*got)[1].Sum != 7 {
		t.Fatalf("coarse windows wrong: %+v", *got)
	}
}

func TestFilterScopesTaskAndRegion(t *testing.T) {
	cfg := Config{Window: time.Minute, CellSizeM: 500}
	clk := simclock.NewFakeClock(simclock.Epoch)
	cfg.Clock = clk
	tier := New(cfg)
	all := collect(tier, Filter{})
	westOnly := collect(tier, Filter{Region: "west"})
	t2Only := collect(tier, Filter{Task: "t2"})

	p := geo.Point{Lat: 40, Lon: -86}
	at := simclock.Epoch.Add(5 * time.Second)
	tier.Ingest("t1", "west", reading(at, 1, p))
	tier.Ingest("t2", "east", reading(at, 2, p))
	clk.Advance(2 * time.Minute)
	tier.Advance(clk.Now())

	if len(*all) != 2 {
		t.Fatalf("unfiltered sub: want 2 windows, got %d", len(*all))
	}
	if len(*westOnly) != 1 || (*westOnly)[0].Key.Region != "west" {
		t.Fatalf("region filter: got %+v", *westOnly)
	}
	if len(*t2Only) != 1 || (*t2Only)[0].Key.Task != "t2" {
		t.Fatalf("task filter: got %+v", *t2Only)
	}
}

func TestLateSamplesDroppedAndCounted(t *testing.T) {
	cfg := Config{Window: time.Minute, CellSizeM: 500}
	clk := simclock.NewFakeClock(simclock.Epoch)
	cfg.Clock = clk
	tier := New(cfg)
	got := collect(tier, Filter{})

	p := geo.Point{Lat: 40, Lon: -86}
	tier.Ingest("t1", "w", reading(simclock.Epoch.Add(61*time.Second), 5, p))
	// A full window older than the open one: dropped, not folded in.
	tier.Ingest("t1", "w", reading(simclock.Epoch.Add(1*time.Second), 1000, p))
	clk.Advance(3 * time.Minute)
	tier.Advance(clk.Now())

	if st := tier.Stats(); st.LateSamples != 1 {
		t.Fatalf("LateSamples = %d, want 1", st.LateSamples)
	}
	if len(*got) != 1 || (*got)[0].Count != 1 || (*got)[0].Max != 5 {
		t.Fatalf("late sample leaked into a window: %+v", *got)
	}
}

func TestMaxSeriesEvictsStalest(t *testing.T) {
	cfg := Config{Window: time.Minute, CellSizeM: 500, MaxSeries: 4}
	clk := simclock.NewFakeClock(simclock.Epoch)
	cfg.Clock = clk
	tier := New(cfg)

	at := simclock.Epoch
	for i := 0; i < 10; i++ {
		at = at.Add(time.Second)
		p := geo.Point{Lat: 40 + float64(i)*0.1, Lon: -86}
		tier.Ingest("t1", "w", reading(at, 1, p))
	}
	st := tier.Stats()
	if st.Series > 4 {
		t.Fatalf("series cap breached: %d > 4", st.Series)
	}
	if st.Evicted != 6 {
		t.Fatalf("Evicted = %d, want 6", st.Evicted)
	}
}

func TestIdleSeriesExpire(t *testing.T) {
	cfg := Config{Window: time.Minute, Retention: 3, CellSizeM: 500}
	clk := simclock.NewFakeClock(simclock.Epoch)
	cfg.Clock = clk
	tier := New(cfg)

	tier.Ingest("t1", "w", reading(simclock.Epoch.Add(time.Second), 1, geo.Point{Lat: 40, Lon: -86}))
	if tier.Stats().Series != 1 {
		t.Fatal("series not created")
	}
	clk.Advance(10 * time.Minute) // far past the retention horizon
	tier.Advance(clk.Now())
	if st := tier.Stats(); st.Series != 0 || st.Evicted != 1 {
		t.Fatalf("idle series not expired: %+v", st)
	}
}

func TestSnapshotRestoreKeepsRecentWindows(t *testing.T) {
	cfg := Config{Window: time.Minute, Retention: 5, CellSizeM: 500}
	clk := simclock.NewFakeClock(simclock.Epoch)
	cfg.Clock = clk
	tier := New(cfg)

	p := geo.Point{Lat: 40, Lon: -86}
	// Two closed windows and one open.
	for i := 0; i < 3; i++ {
		at := simclock.Epoch.Add(time.Duration(i)*time.Minute + 10*time.Second)
		clk.Advance(at.Sub(clk.Now()))
		tier.Advance(clk.Now())
		tier.Ingest("t1", "west", reading(at, float64(i+1)*10, p))
	}

	blob, err := tier.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	// A fresh tier (a restarted server, or a promoted standby) restores
	// and picks up exactly where the snapshot left off — including the
	// open window, which the next samples keep extending.
	cfg2 := cfg
	clk2 := simclock.NewFakeClock(clk.Now())
	cfg2.Clock = clk2
	tier2 := New(cfg2)
	if err := tier2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	got := collect(tier2, Filter{Span: 3})
	tier2.Ingest("t1", "west", reading(clk2.Now(), 40, p))
	clk2.Advance(2 * time.Minute)
	tier2.Advance(clk2.Now())

	if len(*got) == 0 {
		t.Fatal("no windows after restore")
	}
	last := (*got)[len(*got)-1]
	// The final span-3 merge sees the pre-snapshot window (20), and the
	// open window that accumulated 30 before and 40 after the restore.
	if last.Count != 3 || last.Min != 20 || last.Max != 40 {
		t.Fatalf("restored merge wrong: %+v", last)
	}

	// A snapshot from a different window size is refused.
	tier3 := New(Config{Window: 30 * time.Second, Clock: clk2})
	if err := tier3.Restore(blob); err == nil {
		t.Fatal("restore accepted a snapshot with a mismatched window")
	}
}

func TestQuantileEstimatorAccuracy(t *testing.T) {
	// Uniform values across a couple of binades: the estimator must land
	// within its documented 12.5% relative error, clamped to [min, max].
	var h [histSize]uint32
	var min, max float64 = math.Inf(1), math.Inf(-1)
	var n uint64
	vals := make([]float64, 0, 10000)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := 900 + rng.Float64()*200 // hPa-ish
		vals = append(vals, v)
		h[bucketOf(v)]++
		n++
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.5, 0.99} {
		got := histQuantile(&h, n, q, min, max)
		want := sorted[int(q*float64(n-1))] // exact nearest-rank
		if rel := math.Abs(got-want) / want; rel > 0.125 {
			t.Fatalf("q%v: estimate %v vs exact %v (rel err %.3f)", q, got, want, rel)
		}
	}
	// Negative and zero values round-trip through their buckets.
	for _, v := range []float64{-42.5, -0.01, 0, 0.25, 3.9e6} {
		b := bucketOf(v)
		m := bucketMid(b)
		if v == 0 && m != 0 {
			t.Fatalf("zero bucket mid = %v", m)
		}
		if v != 0 && math.Signbit(m) != math.Signbit(v) {
			t.Fatalf("bucket mid sign flipped for %v: %v", v, m)
		}
	}
}
