package client

import (
	"fmt"
	"sync"

	"senseaid/internal/sensors"
	"senseaid/internal/wire"
)

// The paper observes that before Sense-Aid there was "no middleware on
// the mobile devices that can allow multiple crowdsensing apps to co-exist
// and leverage common functionalities". AppMux is that middleware: local
// crowdsensing apps register their sensor interests with the one Sense-Aid
// client on the device; when a schedule arrives, the mux samples once,
// uploads once, and fans the reading out to every interested app — one
// radio transfer and one sensor activation no matter how many apps care.

// Uplink is the slice of the Sense-Aid client the mux needs; *Client
// satisfies it, and tests substitute fakes.
type Uplink interface {
	// StartSensing installs the schedule handler.
	StartSensing(h ScheduleHandler) error
	// SendSenseData uploads one reading for a request.
	SendSenseData(requestID string, r sensors.Reading) error
}

var _ Uplink = (*Client)(nil)

// Sampler takes one reading from device hardware.
type Sampler func(sensors.Type) (sensors.Reading, error)

// MuxStats counts the mux's economy.
type MuxStats struct {
	// Schedules received from the server.
	Schedules int
	// Samples actually taken (one per schedule).
	Samples int
	// Uploads sent (one per schedule).
	Uploads int
	// Deliveries to local apps (>= Samples when apps share sensors —
	// the saving is Deliveries - Samples sensor activations avoided).
	Deliveries int
	// Errors from sampling or uploading.
	Errors int
}

// AppMux multiplexes one device's Sense-Aid client across local apps.
// Safe for concurrent use (schedules arrive on the client's read loop
// while apps register from elsewhere).
type AppMux struct {
	uplink  Uplink
	sampler Sampler

	mu    sync.Mutex
	apps  map[string]muxApp
	stats MuxStats
}

type muxApp struct {
	interest map[sensors.Type]bool
	deliver  func(sensors.Reading)
}

// NewAppMux builds a mux over an uplink and a hardware sampler.
func NewAppMux(uplink Uplink, sampler Sampler) (*AppMux, error) {
	if uplink == nil {
		return nil, fmt.Errorf("client: nil uplink")
	}
	if sampler == nil {
		return nil, fmt.Errorf("client: nil sampler")
	}
	return &AppMux{
		uplink:  uplink,
		sampler: sampler,
		apps:    make(map[string]muxApp),
	}, nil
}

// RegisterApp adds a local app with its sensor interests and delivery
// callback. Registering an existing name replaces it.
func (m *AppMux) RegisterApp(name string, interest []sensors.Type, deliver func(sensors.Reading)) error {
	if name == "" {
		return fmt.Errorf("client: empty app name")
	}
	if len(interest) == 0 {
		return fmt.Errorf("client: app %s has no sensor interests", name)
	}
	if deliver == nil {
		return fmt.Errorf("client: app %s has no delivery callback", name)
	}
	set := make(map[sensors.Type]bool, len(interest))
	for _, t := range interest {
		if !t.Valid() {
			return fmt.Errorf("client: app %s: invalid sensor %v", name, t)
		}
		set[t] = true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.apps[name] = muxApp{interest: set, deliver: deliver}
	return nil
}

// UnregisterApp removes a local app.
func (m *AppMux) UnregisterApp(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.apps, name)
}

// Apps returns the number of registered apps.
func (m *AppMux) Apps() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.apps)
}

// Stats returns a copy of the counters.
func (m *AppMux) Stats() MuxStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Start installs the mux as the client's schedule handler.
func (m *AppMux) Start() error {
	return m.uplink.StartSensing(m.onSchedule)
}

// onSchedule samples once, uploads once, and fans out. The work runs off
// the calling goroutine: schedule handlers are invoked from the client's
// read loop, and SendSenseData must not block it (its ack arrives on that
// very loop).
func (m *AppMux) onSchedule(sch wire.Schedule) {
	m.mu.Lock()
	m.stats.Schedules++
	m.mu.Unlock()
	go m.handle(sch)
}

func (m *AppMux) handle(sch wire.Schedule) {
	reading, err := m.sampler(sch.Sensor)
	if err != nil {
		m.mu.Lock()
		m.stats.Errors++
		m.mu.Unlock()
		return
	}
	m.mu.Lock()
	m.stats.Samples++
	m.mu.Unlock()

	if err := m.uplink.SendSenseData(sch.RequestID, reading); err != nil {
		m.mu.Lock()
		m.stats.Errors++
		m.mu.Unlock()
		return
	}

	m.mu.Lock()
	m.stats.Uploads++
	var targets []func(sensors.Reading)
	for _, app := range m.apps {
		if app.interest[sch.Sensor] {
			targets = append(targets, app.deliver)
			m.stats.Deliveries++
		}
	}
	m.mu.Unlock()
	for _, deliver := range targets {
		deliver(reading)
	}
}
