package agg

import (
	"sort"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/sensors"
)

// Post-hoc reference computation. Batch re-derives, from a flat list of
// samples, exactly the tumbling windows the streaming tier emits for
// them — independently (group, then fold), not by replaying the Tier.
// Count, sum, mean, min, and max are exact by construction; p50/p99 are
// estimator-defined (the fixed log-bucket histogram in hist.go), and
// Batch applies the same estimator, so streaming output is directly
// comparable. The sim's 100-campaign shared-tier scenario uses this as
// its ground truth.

// Sample is one delivered reading with the routing context the tap sees.
type Sample struct {
	Task    string
	Region  string
	Reading sensors.Reading
}

// Batch computes every non-empty tumbling base window for the samples
// under cfg's window/grid, sorted by (task, region, cell, start) for
// deterministic comparison.
func Batch(samples []Sample, cfg Config) []Window {
	cfg.fill()
	grid := geo.Grid{SizeM: cfg.CellSizeM}
	type slot struct {
		key Key
		idx int64
	}
	acc := make(map[slot]*win)
	for _, s := range samples {
		nanos := s.Reading.At.UnixNano()
		sl := slot{
			key: Key{Task: s.Task, Region: s.Region, Cell: grid.CellOf(s.Reading.Where)},
			idx: windowIndex(nanos, int64(cfg.Window)),
		}
		w := acc[sl]
		if w == nil {
			w = &win{idx: sl.idx}
			acc[sl] = w
		}
		w.observe(s.Reading.Value, nanos)
	}
	out := make([]Window, 0, len(acc))
	for sl, w := range acc {
		start := time.Unix(0, sl.idx*int64(cfg.Window)).UTC()
		end := time.Unix(0, (sl.idx+1)*int64(cfg.Window)).UTC()
		out = append(out, Window{
			Key:       sl.key,
			Start:     start,
			End:       end,
			Count:     w.count,
			Sum:       w.sum,
			Mean:      w.sum / float64(w.count),
			Min:       w.min,
			Max:       w.max,
			P50:       histQuantile(&w.hist, w.count, 0.50, w.min, w.max),
			P99:       histQuantile(&w.hist, w.count, 0.99, w.min, w.max),
			Freshness: end.Sub(time.Unix(0, w.lastAt)),
		})
	}
	SortWindows(out)
	return out
}

// SortWindows orders windows by (task, region, cell, start) — the
// canonical order for comparing a streamed set against a batch set.
func SortWindows(ws []Window) {
	sort.Slice(ws, func(i, j int) bool {
		a, b := &ws[i], &ws[j]
		if a.Key.Task != b.Key.Task {
			return a.Key.Task < b.Key.Task
		}
		if a.Key.Region != b.Key.Region {
			return a.Key.Region < b.Key.Region
		}
		if a.Key.Cell.Lat != b.Key.Cell.Lat {
			return a.Key.Cell.Lat < b.Key.Cell.Lat
		}
		if a.Key.Cell.Lon != b.Key.Cell.Lon {
			return a.Key.Cell.Lon < b.Key.Cell.Lon
		}
		return a.Start.Before(b.Start)
	})
}
