package faultconn

import (
	"bytes"
	"net"
	"testing"
	"time"
)

func TestPartitionAfterWritesBlackholes(t *testing.T) {
	c, srv := pipe(t, Policy{PartitionAfterWrites: 2})

	// Write 1 crosses normally.
	if _, err := c.Write([]byte("pre")); err != nil {
		t.Fatalf("pre-partition write: %v", err)
	}
	buf := make([]byte, 3)
	if _, err := srv.Read(buf); err != nil || string(buf) != "pre" {
		t.Fatalf("server read %q, %v", buf, err)
	}

	// Writes 2+ claim success but nothing arrives.
	n, err := c.Write([]byte("lost"))
	if err != nil || n != 4 {
		t.Fatalf("partitioned write reported (%d, %v), want silent success", n, err)
	}
	if got := c.BlackholedWrites(); got != 1 {
		t.Fatalf("BlackholedWrites = %d, want 1", got)
	}
	if err := srv.SetReadDeadline(time.Now().Add(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Read(buf); err == nil {
		t.Fatal("server received bytes through an asymmetric partition")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("server read error %v, want deadline timeout", err)
	}

	// The asymmetry: the reverse direction still flows.
	if _, err := srv.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	reply := make([]byte, 4)
	if err := c.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(reply); err != nil || string(reply) != "back" {
		t.Fatalf("read through partition's healthy direction: %q, %v", reply, err)
	}
	if c.Dropped() {
		t.Fatal("partition must not kill the connection")
	}
}

func TestCorruptProbFlipsOneByte(t *testing.T) {
	c, srv := pipe(t, Policy{Seed: 11, CorruptProb: 1})
	payload := []byte("hello, tower")
	if _, err := c.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(payload))
	if _, err := srv.Read(got); err != nil {
		t.Fatalf("read: %v", err)
	}
	diffs := 0
	for i := range payload {
		if got[i] != payload[i] {
			diffs++
			if got[i] != payload[i]^0xFF {
				t.Fatalf("byte %d mangled to %x, want %x^FF", i, got[i], payload[i])
			}
		}
	}
	if diffs != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diffs)
	}
	// The caller's buffer must not be touched — the flip happens on a copy.
	if !bytes.Equal(payload, []byte("hello, tower")) {
		t.Fatal("corruption mutated the caller's buffer")
	}
}

func TestCorruptProbDeterministic(t *testing.T) {
	read := func(seed int64) []byte {
		c, srv := pipe(t, Policy{Seed: seed, CorruptProb: 1})
		if _, err := c.Write([]byte("abcdefgh")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 8)
		if _, err := srv.Read(buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := read(5), read(5)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed corrupted differently: %x vs %x", a, b)
	}
	if c := read(6); bytes.Equal(a, c) {
		t.Fatalf("different seeds corrupted identically: %x", a)
	}
}
