// Weathermap: a Pressurenet-style hyperlocal weather map built on the
// Sense-Aid simulation substrate — the workload the paper's introduction
// motivates ("to create a hyperlocal weather map, one needs pressure
// readings only about once in 5 minutes and from only 2 devices in a
// 500 meters radius circular area").
//
// A 20-student cohort roams campus; four concurrent tasks (one per study
// location) each ask for barometer readings every 5 minutes from 2
// devices within 500 m. The example renders the resulting pressure map
// and shows the energy bill next to what the Periodic status quo would
// have cost.
//
// Run with:
//
//	go run ./examples/weathermap
package main

import (
	"fmt"
	"os"
	"time"

	"senseaid/internal/core"
	"senseaid/internal/fusion"
	"senseaid/internal/geo"
	"senseaid/internal/power"
	"senseaid/internal/sensors"
	"senseaid/internal/sim"
	"senseaid/internal/simclock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "weathermap: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const duration = 90 * time.Minute
	tasks := make([]core.Task, 0, 4)
	for _, loc := range geo.CampusLocations() {
		tasks = append(tasks, core.Task{
			Sensor:         sensors.Barometer,
			SamplingPeriod: 5 * time.Minute,
			Start:          simclock.Epoch,
			End:            simclock.Epoch.Add(duration),
			Area:           geo.Circle{Center: loc.Point, RadiusM: 500},
			SpatialDensity: 2,
		})
	}

	// Sense-Aid run, with every validated reading feeding the hyperlocal
	// pressure map (the application-server side of the pipeline).
	w, err := sim.NewWorld(sim.WorldConfig{NumDevices: 20, Seed: 7})
	if err != nil {
		return err
	}
	pressureMap, err := fusion.NewMap(fusion.Config{
		Center: geo.CampusCenter(),
		SpanM:  2500,
		Cells:  12,
		MaxAge: 15 * time.Minute,
	})
	if err != nil {
		return err
	}
	fw := sim.SenseAid{
		Variant: sim.Complete,
		OnReading: func(_ core.TaskID, _ string, r sensors.Reading) {
			pressureMap.Add(fusion.Sample{Where: r.Where, Value: r.Value, At: r.At})
		},
	}
	sa, err := fw.Run(w, tasks)
	if err != nil {
		return err
	}

	// Status-quo run on an identical cohort for the energy comparison.
	w2, err := sim.NewWorld(sim.WorldConfig{NumDevices: 20, Seed: 7})
	if err != nil {
		return err
	}
	periodic, err := sim.Periodic{}.Run(w2, tasks)
	if err != nil {
		return err
	}

	fmt.Printf("hyperlocal weather map — %d readings over %v from 4 campus sites\n\n",
		sa.Readings, duration)

	// The fused map, built purely from the crowdsensed readings.
	at := simclock.Epoch.Add(duration)
	fmt.Println(pressureMap.Render(at))

	fmt.Println("site                 crowdsensed      ground truth")
	for _, loc := range geo.CampusLocations() {
		fused, ok := pressureMap.ValueAt(loc.Point, at)
		truth := w.Field.At(loc.Point, at)
		if !ok {
			fmt.Printf("  %-18s %10s %14.2f hPa\n", loc.Name, "(no data)", truth)
			continue
		}
		fmt.Printf("  %-18s %8.2f hPa %11.2f hPa  %s\n", loc.Name, fused, truth, bar(fused))
	}

	fmt.Printf("\nenergy for the 90-minute campaign (20 devices):\n")
	fmt.Printf("  sense-aid total:   %7.1f J (%.2f%% of one battery)\n",
		sa.TotalCrowdJ, sa.TotalCrowdJ/power.NominalCapacityJ*100)
	fmt.Printf("  periodic total:    %7.1f J (%.2f%% of one battery)\n",
		periodic.TotalCrowdJ, periodic.TotalCrowdJ/power.NominalCapacityJ*100)
	fmt.Printf("  saving:            %7.1f%%\n", (1-sa.TotalCrowdJ/periodic.TotalCrowdJ)*100)
	fmt.Printf("  uploads in tail windows: %d, forced promotions: %d, batched: %d\n",
		sa.Uploads.Piggybacked, sa.Uploads.Forced, sa.Uploads.Batched)

	budget := power.SurveyBudgetJ()
	over := 0
	for _, e := range sa.PerDeviceJ {
		if e > budget {
			over++
		}
	}
	fmt.Printf("  devices over the 2%%-battery comfort budget: %d of %d\n", over, len(sa.PerDeviceJ))
	return nil
}

// bar renders a tiny pressure bar chart around 1013 hPa.
func bar(hPa float64) string {
	n := int((hPa - 1010) * 4)
	if n < 0 {
		n = 0
	}
	if n > 30 {
		n = 30
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}
