package netserver

import (
	"runtime"
	"sync"
	"time"

	"senseaid/internal/obs"
)

// defaultShedWait is how long an overloaded submit exerts backpressure
// on its connection's read loop before the message is shed. Blocking
// briefly smooths bursts (the common overload is a registration or
// upload spike measured in milliseconds); shedding makes a sustained
// overload visible to the peer instead of letting latency grow without
// bound.
const defaultShedWait = time.Second

// workerPool bounds how many RPC handlers run concurrently. Connection
// read loops submit one handler job at a time and wait for its result,
// so per-connection message ordering is untouched; what the pool bounds
// is the cross-connection fan-in onto the core. Before the pool, 50k
// connections could stack 50k goroutines onto the core mutex at once —
// every handler eventually ran, but tail latency and scheduler pressure
// grew with connection count instead of with configured capacity.
type workerPool struct {
	queue    chan func()
	shedWait time.Duration
	shed     *obs.Counter
	wg       sync.WaitGroup
}

// defaultRPCWorkers sizes the pool when the operator does not: handlers
// are short (a decode plus one core call), so a small multiple of the
// CPU count keeps the core saturated without goroutine churn.
func defaultRPCWorkers() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

// newWorkerPool starts workers goroutines draining a queue of depth
// jobs. shed counts messages rejected after the backpressure wait.
func newWorkerPool(workers, depth int, shedWait time.Duration, shed *obs.Counter) *workerPool {
	if workers <= 0 {
		workers = defaultRPCWorkers()
	}
	if depth <= 0 {
		depth = 8 * workers
	}
	if shedWait <= 0 {
		shedWait = defaultShedWait
	}
	p := &workerPool{
		queue:    make(chan func(), depth),
		shedWait: shedWait,
		shed:     shed,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.queue {
				f()
			}
		}()
	}
	return p
}

// run submits one job, blocking up to shedWait when the queue is full.
// It reports false — and counts a shed — when the queue stayed full,
// in which case f will never run.
func (p *workerPool) run(f func()) bool {
	select {
	case p.queue <- f:
		return true
	default:
	}
	t := time.NewTimer(p.shedWait)
	defer t.Stop()
	select {
	case p.queue <- f:
		return true
	case <-t.C:
		p.shed.Inc()
		return false
	}
}

// close drains the pool. The caller must guarantee no further run calls
// (the server closes the pool only after every connection goroutine has
// exited).
func (p *workerPool) close() {
	close(p.queue)
	p.wg.Wait()
}
