package reputation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOutcomeNames(t *testing.T) {
	names := map[Outcome]string{
		OutcomeAccepted: "accepted",
		OutcomeOutlier:  "outlier",
		OutcomeRejected: "rejected",
		OutcomeMissed:   "missed",
		Outcome(42):     "outcome(42)",
	}
	for o, want := range names {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(o), got, want)
		}
	}
}

func TestTrackerScoresMoveWithOutcomes(t *testing.T) {
	tr := NewTracker(Config{})
	if got := tr.Score("fresh"); got != 0.8 {
		t.Fatalf("fresh score = %v, want initial 0.8", got)
	}
	for i := 0; i < 20; i++ {
		tr.Record("good", OutcomeAccepted)
		tr.Record("bad", OutcomeMissed)
		tr.Record("flaky", OutcomeOutlier)
	}
	good, bad, flaky := tr.Score("good"), tr.Score("bad"), tr.Score("flaky")
	if !(good > flaky && flaky > bad) {
		t.Fatalf("ordering wrong: good=%.2f flaky=%.2f bad=%.2f", good, flaky, bad)
	}
	if good < 0.95 {
		t.Fatalf("consistently good device scores %.2f, want ~1", good)
	}
	if bad > 0.05 {
		t.Fatalf("consistently missing device scores %.2f, want ~0", bad)
	}
	if tr.Count("good", OutcomeAccepted) != 20 {
		t.Fatalf("count = %d, want 20", tr.Count("good", OutcomeAccepted))
	}
	if len(tr.Devices()) != 3 {
		t.Fatalf("devices = %v", tr.Devices())
	}
}

func TestTrackerRecovers(t *testing.T) {
	tr := NewTracker(Config{})
	for i := 0; i < 10; i++ {
		tr.Record("d", OutcomeMissed)
	}
	low := tr.Score("d")
	for i := 0; i < 15; i++ {
		tr.Record("d", OutcomeAccepted)
	}
	if got := tr.Score("d"); got <= low || got < 0.9 {
		t.Fatalf("device did not recover: %v -> %v", low, got)
	}
}

func TestTrackerIgnoresEmptyID(t *testing.T) {
	tr := NewTracker(Config{})
	tr.Record("", OutcomeAccepted)
	if len(tr.Devices()) != 0 {
		t.Fatal("empty device ID tracked")
	}
}

func TestTrackerConfigDefaults(t *testing.T) {
	tr := NewTracker(Config{Initial: 5, Alpha: -1}) // both invalid
	if tr.cfg.Initial != 0.8 || tr.cfg.Alpha != 0.25 {
		t.Fatalf("defaults not applied: %+v", tr.cfg)
	}
}

func TestFlagOutliersBasic(t *testing.T) {
	values := map[string]float64{
		"a": 1013.2, "b": 1013.4, "c": 1013.1, "d": 1013.3,
		"liar": 980.0,
	}
	flagged := FlagOutliers(values, 4, 0.5)
	if !flagged["liar"] {
		t.Fatal("wild value not flagged")
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		if flagged[id] {
			t.Fatalf("honest device %s flagged", id)
		}
	}
}

func TestFlagOutliersIdenticalPlusOne(t *testing.T) {
	// Zero MAD: the absolute floor must still catch the liar.
	values := map[string]float64{"a": 1000, "b": 1000, "c": 1000, "liar": 999}
	flagged := FlagOutliers(values, 4, 0.5)
	if !flagged["liar"] {
		t.Fatal("liar hidden by zero spread")
	}
}

func TestFlagOutliersNeedsThree(t *testing.T) {
	if got := FlagOutliers(map[string]float64{"a": 1, "b": 100}, 4, 0.5); len(got) != 0 {
		t.Fatal("flagged with only two readings (no majority)")
	}
	if got := FlagOutliers(nil, 4, 0.5); len(got) != 0 {
		t.Fatal("flagged on empty input")
	}
}

// Property: scores always stay in [0,1] under any outcome sequence.
func TestScoreBoundsProperty(t *testing.T) {
	f := func(seq []uint8) bool {
		tr := NewTracker(Config{})
		for _, b := range seq {
			tr.Record("d", Outcome(int(b%4)+1))
			s := tr.Score("d")
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the honest majority is never flagged when its spread is tight
// and the outlier is far away.
func TestMajorityNeverFlaggedProperty(t *testing.T) {
	f := func(base int16, jitters [4]int8) bool {
		values := map[string]float64{}
		center := float64(base)
		for i, j := range jitters {
			values[string(rune('a'+i))] = center + float64(j)/1000
		}
		values["liar"] = center + 1e6
		flagged := FlagOutliers(values, 4, 0.5)
		if !flagged["liar"] {
			return false
		}
		for i := range jitters {
			if flagged[string(rune('a'+i))] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
