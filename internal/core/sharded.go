package core

import (
	"fmt"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/obs"
	"senseaid/internal/sensors"
)

// The paper's server is "logically centralized; in its physical
// instantiation, each entity is distributed into multiple instances,
// resident at the edge of the cellular network. Each instance will be
// located spatially close to the mobile devices" — and the conclusion
// names "scalability of our framework to large geographic regions" as
// ongoing work. ShardedServer is that instantiation: one Server instance
// per geographic region, with tasks routed to the shard covering their
// area and devices homed (and re-homed as they move) to the shard
// covering their position.

// Region is one edge shard's coverage area.
type Region struct {
	Name string
	Area geo.Circle
}

// ShardedServer fronts a set of per-region Server instances.
type ShardedServer struct {
	shards []shardEntry
	// deviceHome maps a device to its current shard index.
	deviceHome map[string]int
	// taskHome maps a task to the shard that owns it.
	taskHome map[TaskID]int
}

type shardEntry struct {
	region Region
	server *Server
}

// NewShardedServer builds one Server per region, all sharing a dispatcher
// and configuration.
func NewShardedServer(cfg ServerConfig, d Dispatcher, regions []Region) (*ShardedServer, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("core: sharded server needs at least one region")
	}
	seen := make(map[string]bool, len(regions))
	s := &ShardedServer{
		deviceHome: make(map[string]int),
		taskHome:   make(map[TaskID]int),
	}
	for _, r := range regions {
		if r.Name == "" {
			return nil, fmt.Errorf("core: region with empty name")
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("core: duplicate region %q", r.Name)
		}
		if r.Area.RadiusM <= 0 || !r.Area.Center.Valid() {
			return nil, fmt.Errorf("core: region %q has invalid area", r.Name)
		}
		seen[r.Name] = true
		shardCfg := cfg
		if cfg.Metrics != nil {
			// Distinct shard labels keep per-shard gauges (queue depths,
			// device counts) from overwriting each other on the shared
			// registry.
			labels := obs.Labels{"shard": r.Name}
			for k, v := range cfg.MetricsLabels {
				labels[k] = v
			}
			shardCfg.MetricsLabels = labels
		}
		srv, err := NewServer(shardCfg, d)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, shardEntry{region: r, server: srv})
	}
	return s, nil
}

// Shards returns the number of shards.
func (s *ShardedServer) Shards() int { return len(s.shards) }

// ShardFor returns the index of the first region containing the point, or
// -1 when the point is outside every region.
func (s *ShardedServer) ShardFor(p geo.Point) int {
	for i, sh := range s.shards {
		if sh.region.Area.Contains(p) {
			return i
		}
	}
	return -1
}

// RegionName returns a shard's region name.
func (s *ShardedServer) RegionName(i int) string {
	if i < 0 || i >= len(s.shards) {
		return ""
	}
	return s.shards[i].region.Name
}

// RegisterDevice homes a device to the shard covering its position.
func (s *ShardedServer) RegisterDevice(d DeviceState) error {
	i := s.ShardFor(d.Position)
	if i < 0 {
		return fmt.Errorf("core: device %s at %s is outside every region", d.ID, d.Position)
	}
	if err := s.shards[i].server.Devices().Register(d); err != nil {
		return err
	}
	s.deviceHome[d.ID] = i
	return nil
}

// DeregisterDevice removes a device from its home shard.
func (s *ShardedServer) DeregisterDevice(id string) {
	if i, ok := s.deviceHome[id]; ok {
		s.shards[i].server.Devices().Deregister(id)
		delete(s.deviceHome, id)
	}
}

// UpdateDeviceState applies a state report, re-homing the device if it
// moved into another shard's region.
func (s *ShardedServer) UpdateDeviceState(id string, pos geo.Point, batteryPct float64, at time.Time) error {
	home, ok := s.deviceHome[id]
	if !ok {
		return fmt.Errorf("core: update for unregistered device %s", id)
	}
	target := s.ShardFor(pos)
	if target < 0 {
		// Out of all coverage: keep the stale home record; the device
		// will fail region qualification anyway.
		return s.shards[home].server.Devices().UpdateState(id, pos, batteryPct, at)
	}
	if target == home {
		return s.shards[home].server.Devices().UpdateState(id, pos, batteryPct, at)
	}
	// Re-home: move the record, preserving fairness counters.
	rec, ok := s.shards[home].server.Devices().Get(id)
	if !ok {
		return fmt.Errorf("core: device %s missing from home shard", id)
	}
	s.shards[home].server.Devices().Deregister(id)
	rec.Position = pos
	rec.BatteryPct = batteryPct
	rec.LastComm = at
	if err := s.shards[target].server.Devices().Register(rec); err != nil {
		return err
	}
	// Register resets responsiveness; restore counters updated above.
	s.deviceHome[id] = target
	return nil
}

// SubmitTask routes a task to the shard covering its area center.
func (s *ShardedServer) SubmitTask(t Task, now time.Time, sink DataSink) (TaskID, error) {
	i := s.ShardFor(t.Area.Center)
	if i < 0 {
		return "", fmt.Errorf("core: task area %s is outside every region", t.Area)
	}
	id, err := s.shards[i].server.SubmitTask(t, now, sink)
	if err != nil {
		return "", err
	}
	// Qualify the ID with the shard so IDs stay unique across shards.
	qualified := TaskID(fmt.Sprintf("%s/%s", s.shards[i].region.Name, id))
	s.taskHome[qualified] = i
	s.taskHome[id] = i // also accept the bare ID for convenience
	return qualified, nil
}

// shardForTask resolves a (possibly shard-qualified) task ID.
func (s *ShardedServer) shardForTask(id TaskID) (int, TaskID, error) {
	if i, ok := s.taskHome[id]; ok {
		return i, stripRegion(id), nil
	}
	return 0, "", fmt.Errorf("core: unknown task %s", id)
}

func stripRegion(id TaskID) TaskID {
	for i := 0; i < len(id); i++ {
		if id[i] == '/' {
			return id[i+1:]
		}
	}
	return id
}

// DeleteTask removes a task from its owning shard.
func (s *ShardedServer) DeleteTask(id TaskID) error {
	i, bare, err := s.shardForTask(id)
	if err != nil {
		return err
	}
	return s.shards[i].server.DeleteTask(bare)
}

// UpdateTaskParams mutates a task on its owning shard.
func (s *ShardedServer) UpdateTaskParams(id TaskID, now time.Time, mutate func(*Task)) error {
	i, bare, err := s.shardForTask(id)
	if err != nil {
		return err
	}
	return s.shards[i].server.UpdateTaskParams(bare, now, mutate)
}

// ReceiveData routes a device's reading to the shard owning the request's
// task. Request IDs are "<taskID>#<seq>".
func (s *ShardedServer) ReceiveData(reqID, deviceID string, reading sensors.Reading, now time.Time) error {
	taskPart := reqID
	for i := 0; i < len(reqID); i++ {
		if reqID[i] == '#' {
			taskPart = reqID[:i]
			break
		}
	}
	i, _, err := s.shardForTask(TaskID(taskPart))
	if err != nil {
		return err
	}
	return s.shards[i].server.ReceiveData(reqID, deviceID, reading, now)
}

// ProcessDue drives every shard's scheduling loop.
func (s *ShardedServer) ProcessDue(now time.Time) {
	for _, sh := range s.shards {
		sh.server.ProcessDue(now)
	}
}

// NextWake returns the earliest wake instant across shards.
func (s *ShardedServer) NextWake() (time.Time, bool) {
	var best time.Time
	ok := false
	for _, sh := range s.shards {
		if t, has := sh.server.NextWake(); has && (!ok || t.Before(best)) {
			best, ok = t, true
		}
	}
	return best, ok
}

// Stats aggregates counters across shards.
func (s *ShardedServer) Stats() Stats {
	var total Stats
	for _, sh := range s.shards {
		st := sh.server.Stats()
		total.TasksSubmitted += st.TasksSubmitted
		total.RequestsGenerated += st.RequestsGenerated
		total.RequestsSatisfied += st.RequestsSatisfied
		total.RequestsWaitlisted += st.RequestsWaitlisted
		total.RequestsExpired += st.RequestsExpired
		total.ReadingsAccepted += st.ReadingsAccepted
		total.ReadingsRejected += st.ReadingsRejected
		total.DispatchesMissed += st.DispatchesMissed
	}
	return total
}

// Shard exposes one shard's Server for inspection and tests.
func (s *ShardedServer) Shard(i int) (*Server, Region, error) {
	if i < 0 || i >= len(s.shards) {
		return nil, Region{}, fmt.Errorf("core: shard %d out of range", i)
	}
	return s.shards[i].server, s.shards[i].region, nil
}
