// Reliability: the data-quality extension end to end — the paper's
// pointer that reliable-data collection (SACRM, truth discovery) "can be
// incorporated as another factor in our device selector algorithm".
//
// Five devices serve a barometer campaign; one of them reports garbage.
// The server's per-round truth-discovery check flags its readings as
// outliers, its reputation score collapses, and the selector stops
// picking it — all visible in the printed per-round selections.
//
// Run with:
//
//	go run ./examples/reliability
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"senseaid/internal/core"
	"senseaid/internal/geo"
	"senseaid/internal/power"
	"senseaid/internal/reputation"
	"senseaid/internal/sensors"
	"senseaid/internal/simclock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "reliability: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	tracker := reputation.NewTracker(reputation.Config{Alpha: 0.5})
	cfg := core.DefaultServerConfig()
	cfg.Reputation = tracker
	cfg.Selector.Rho = 5
	cfg.Selector.MinReliability = 0.45

	devices := []string{"alice", "bob", "carol", "dave", "mallory"}
	const liar = "mallory"

	// In-process server; the dispatcher delivers synchronously and each
	// selected device "answers" immediately.
	type pendingAnswer struct {
		req core.Request
		dev string
	}
	var inbox []pendingAnswer
	srv, err := core.NewServer(cfg, core.DispatcherFunc(func(req core.Request, dev core.DeviceState) {
		inbox = append(inbox, pendingAnswer{req, dev.ID})
	}))
	if err != nil {
		return err
	}
	for _, id := range devices {
		err := srv.Devices().Register(core.DeviceState{
			ID:         id,
			Position:   geo.CSDepartment,
			BatteryPct: 85,
			LastComm:   simclock.Epoch,
			Sensors:    []sensors.Type{sensors.Barometer},
			Budget:     power.DefaultBudget(),
		})
		if err != nil {
			return err
		}
	}

	task := core.Task{
		Sensor:         sensors.Barometer,
		SamplingPeriod: 10 * time.Minute,
		Start:          simclock.Epoch,
		End:            simclock.Epoch.Add(2 * time.Hour),
		Area:           geo.Circle{Center: geo.CSDepartment, RadiusM: 500},
		SpatialDensity: 4,
	}
	if _, err := srv.SubmitTask(task, simclock.Epoch, func(core.TaskID, string, sensors.Reading) {}); err != nil {
		return err
	}

	field := sensors.NewPressureField()
	fmt.Println("round  selected devices                      mallory's score")
	for round := 0; round < 12; round++ {
		now := simclock.Epoch.Add(time.Duration(round) * 10 * time.Minute)
		srv.ProcessDue(now)

		// Everyone answers; mallory lies.
		for _, p := range inbox {
			value := field.At(geo.CSDepartment, now)
			if p.dev == liar {
				value = 350.0 // nonsense pressure
			}
			reading := sensors.Reading{
				Sensor: sensors.Barometer, Value: value, Unit: "hPa",
				At: now.Add(time.Second), Where: geo.CSDepartment,
			}
			if err := srv.ReceiveData(p.req.ID(), p.dev, reading, reading.At); err != nil {
				return err
			}
		}
		inbox = inbox[:0]

		sels := srv.Selections()
		last := sels[len(sels)-1]
		fmt.Printf("T%-4d  %-38s %15.2f\n", round+1, strings.Join(last.Devices, ", "), tracker.Score(liar))
	}

	fmt.Printf("\nmallory: %d outlier verdicts, final reliability %.2f\n",
		tracker.Count(liar, reputation.OutcomeOutlier), tracker.Score(liar))
	st := srv.Stats()
	fmt.Printf("server: %d readings accepted, %d rounds satisfied\n", st.ReadingsAccepted, st.RequestsSatisfied)
	if tracker.Score(liar) >= 0.45 {
		return fmt.Errorf("mallory was never excluded")
	}
	fmt.Println("mallory fell below the reliability cutoff and is no longer selected")
	return nil
}
