package core

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/power"
	"senseaid/internal/sensors"
	"senseaid/internal/simclock"
)

// selectionAllocBudget is the CI gate on the indexed selection path:
// steady-state allocations per selection (candidate fetch + qualify +
// rank) must stay at or under this. The path is designed to be
// allocation-free once its scratch buffers have grown; the budget leaves
// slack for map-iteration internals, not for per-candidate allocations.
const selectionAllocBudget = 32

// benchSpreadM is the square the benchmark population is scattered over.
const benchSpreadM = 10_000

// benchRegion returns a task region holding ~regionPct of a population
// spread uniformly over benchSpreadM²: area fraction = pi*r^2 / spread^2.
func benchRegion(regionPct float64) geo.Circle {
	r := benchSpreadM * math.Sqrt(regionPct/100/math.Pi)
	center := geo.Offset(geo.CSDepartment, benchSpreadM/2, benchSpreadM/2)
	return geo.Circle{Center: center, RadiusM: r}
}

// benchStore registers n devices spread uniformly over the benchmark
// square, all barometer-capable and selectable.
func benchStore(tb testing.TB, n int) *DeviceStore {
	tb.Helper()
	rng := rand.New(rand.NewSource(2017))
	store := NewDeviceStore()
	for i := 0; i < n; i++ {
		d := DeviceState{
			ID:         fmt.Sprintf("dev-%06d", i),
			Position:   geo.Offset(geo.CSDepartment, rng.Float64()*benchSpreadM, rng.Float64()*benchSpreadM),
			BatteryPct: float64(30 + rng.Intn(70)),
			TimesUsed:  rng.Intn(5),
			LastComm:   simclock.Epoch,
			Sensors:    []sensors.Type{sensors.Barometer},
			Budget:     power.DefaultBudget(),
		}
		if err := store.Register(d); err != nil {
			tb.Fatal(err)
		}
	}
	return store
}

func benchRequest(tb testing.TB, area geo.Circle) Request {
	tb.Helper()
	task := Task{
		ID:             "bench-task",
		Sensor:         sensors.Barometer,
		SamplingPeriod: 10 * time.Minute,
		Start:          simclock.Epoch,
		End:            simclock.Epoch.Add(time.Hour),
		Area:           area,
		SpatialDensity: 5,
	}
	reqs, err := (&task).Expand()
	if err != nil {
		tb.Fatal(err)
	}
	return reqs[0]
}

func benchSelector(tb testing.TB) *Selector {
	tb.Helper()
	cfg := DefaultSelectorConfig()
	cfg.MaxUses = 1 << 30
	sel, err := NewSelector(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return sel
}

// fullScanSelect is the pre-index selection path, kept measurable: copy
// and sort the whole datastore, qualify with the reason map, rank.
func fullScanSelect(tb testing.TB, sel *Selector, store *DeviceStore, req Request) {
	if _, err := sel.Select(req, store.All(), simclock.Epoch); err != nil {
		tb.Fatal(err)
	}
}

// indexedSelect is the production hot path: region-scoped candidates
// from the spatial index, allocation-free qualify and rank via scratch.
func indexedSelect(tb testing.TB, sel *Selector, store *DeviceStore, req Request, cands *[]DeviceState, sc *SelectScratch) {
	*cands = store.AppendCandidatesIn((*cands)[:0], req.Task.Area)
	if _, err := sel.SelectFrom(req, *cands, simclock.Epoch, sc); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkSelection measures one device selection as the registered
// population grows, with the task region holding ~1% of it. full-scan is
// the pre-index path (O(total devices) per request); indexed is the
// production path (O(candidates in the region)).
func BenchmarkSelection(b *testing.B) {
	area := benchRegion(1)
	for _, n := range []int{1_000, 10_000, 100_000} {
		store := benchStore(b, n)
		req := benchRequest(b, area)
		sel := benchSelector(b)
		b.Run(fmt.Sprintf("full-scan/devices=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fullScanSelect(b, sel, store, req)
			}
		})
		b.Run(fmt.Sprintf("indexed/devices=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var cands []DeviceState
			var sc SelectScratch
			for i := 0; i < b.N; i++ {
				indexedSelect(b, sel, store, req, &cands, &sc)
			}
		})
	}
}

// benchRecord is one measured case in BENCH_selection.json.
type benchRecord struct {
	Name        string  `json:"name"`
	Devices     int     `json:"devices"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestRecordSelectionBench runs the selection benchmark matrix and
// writes BENCH_selection.json so the perf trajectory is recorded in CI
// from this PR onward. It is gated on SENSEAID_BENCH_OUT (ci.sh sets
// it); besides recording, it FAILS when the indexed path's allocations
// per selection exceed selectionAllocBudget, or when the 100k-device
// case shows less than a 10x advantage in both ns/op and allocs/op over
// the pre-index full scan.
func TestRecordSelectionBench(t *testing.T) {
	out := os.Getenv("SENSEAID_BENCH_OUT")
	if out == "" {
		t.Skip("SENSEAID_BENCH_OUT not set; benchmark recording runs from ci.sh")
	}
	area := benchRegion(1)
	sizes := []int{1_000, 10_000, 100_000}
	var records []benchRecord
	byName := make(map[string]benchRecord)
	for _, n := range sizes {
		store := benchStore(t, n)
		req := benchRequest(t, area)
		sel := benchSelector(t)
		cases := []struct {
			name string
			run  func(b *testing.B)
		}{
			{fmt.Sprintf("full-scan/devices=%d", n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					fullScanSelect(b, sel, store, req)
				}
			}},
			{fmt.Sprintf("indexed/devices=%d", n), func(b *testing.B) {
				b.ReportAllocs()
				var cands []DeviceState
				var sc SelectScratch
				for i := 0; i < b.N; i++ {
					indexedSelect(b, sel, store, req, &cands, &sc)
				}
			}},
		}
		for _, c := range cases {
			res := testing.Benchmark(c.run)
			rec := benchRecord{
				Name:        c.name,
				Devices:     n,
				NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			}
			records = append(records, rec)
			byName[rec.Name] = rec
			t.Logf("%s: %.0f ns/op, %d allocs/op, %d B/op", rec.Name, rec.NsPerOp, rec.AllocsPerOp, rec.BytesPerOp)
		}
	}

	// Gate 1: the indexed path's allocation hygiene.
	for _, n := range sizes {
		rec := byName[fmt.Sprintf("indexed/devices=%d", n)]
		if rec.AllocsPerOp > selectionAllocBudget {
			t.Errorf("indexed selection at %d devices allocates %d/op, budget %d — the hot path regressed",
				n, rec.AllocsPerOp, selectionAllocBudget)
		}
	}

	// Gate 2: the index must beat the full scan by >= 10x at 100k
	// devices with a 1%% region, in both time and allocations.
	full := byName["full-scan/devices=100000"]
	idx := byName["indexed/devices=100000"]
	nsRatio := full.NsPerOp / maxf(idx.NsPerOp, 1)
	allocRatio := float64(full.AllocsPerOp) / maxf(float64(idx.AllocsPerOp), 1)
	if nsRatio < 10 {
		t.Errorf("indexed path only %.1fx faster than full scan at 100k devices, want >= 10x", nsRatio)
	}
	if allocRatio < 10 {
		t.Errorf("indexed path only %.1fx fewer allocs than full scan at 100k devices, want >= 10x", allocRatio)
	}

	doc := struct {
		Benchmark   string        `json:"benchmark"`
		Go          string        `json:"go"`
		RegionPct   float64       `json:"region_pct_of_population"`
		AllocBudget int           `json:"indexed_alloc_budget_per_selection"`
		NsRatio100k float64       `json:"ns_ratio_fullscan_over_indexed_100k"`
		AllocRatio  float64       `json:"alloc_ratio_fullscan_over_indexed_100k"`
		Cases       []benchRecord `json:"cases"`
	}{
		Benchmark:   "BenchmarkSelection (internal/core)",
		Go:          runtime.Version(),
		RegionPct:   1,
		AllocBudget: selectionAllocBudget,
		NsRatio100k: nsRatio,
		AllocRatio:  allocRatio,
		Cases:       records,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (ns ratio %.1fx, alloc ratio %.1fx at 100k)", out, nsRatio, allocRatio)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
