package mobility

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"senseaid/internal/geo"
)

// City-scale mobility. The campus models above move a device around a
// few buildings; a city-scale chaos scenario needs the patterns that
// actually stress a tower grid — commuters draining residential cells
// into downtown every morning and refilling them every evening, flash
// crowds collapsing onto one venue, and boundary-flapping devices that
// hammer the sharded layer's re-homing path. All models here remain
// pure functions of time given their seed, so a chaos campaign replays
// identically from its scenario seed.

// CommuteConfig parameterises a commuter.
type CommuteConfig struct {
	// Home and Work are the two dwell points.
	Home, Work geo.Point
	// DayStart anchors the diurnal cycle: departures are offsets from
	// each midnight-relative day boundary at or after DayStart.
	DayStart time.Time
	// Seed draws the per-device departure jitter and travel speed.
	Seed int64
	// MorningDepart/EveningDepart are mean departure offsets from the
	// day boundary (defaults 8h and 17h30m).
	MorningDepart, EveningDepart time.Duration
	// DepartJitter spreads departures (uniform ±jitter, default 45 min)
	// so a million commuters do not teleport at the same instant.
	DepartJitter time.Duration
	// SpeedMS is travel speed (default 8 m/s — a bus-and-walk mix).
	SpeedMS float64
}

// Commute is a home↔work diurnal mobility model: at home overnight,
// travels to work in the morning, back in the evening, every day. The
// position is computed directly from the cycle (no lazily grown legs),
// so PositionAt costs O(1) regardless of how far t is from DayStart —
// the property that lets a 1M-device city tick cheaply.
type Commute struct {
	home, work geo.Point
	dayStart   time.Time
	morning    time.Duration // departure offset into the day
	evening    time.Duration
	travel     time.Duration // home->work travel time
	distM      float64
	speed      float64
}

var _ Model = (*Commute)(nil)

// NewCommute builds a commuter.
func NewCommute(cfg CommuteConfig) *Commute {
	if cfg.MorningDepart <= 0 {
		cfg.MorningDepart = 8 * time.Hour
	}
	if cfg.EveningDepart <= 0 {
		cfg.EveningDepart = 17*time.Hour + 30*time.Minute
	}
	if cfg.DepartJitter < 0 {
		cfg.DepartJitter = 0
	} else if cfg.DepartJitter == 0 {
		cfg.DepartJitter = 45 * time.Minute
	}
	if cfg.SpeedMS <= 0 {
		cfg.SpeedMS = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jitter := func() time.Duration {
		if cfg.DepartJitter == 0 {
			return 0
		}
		return time.Duration(rng.Int63n(int64(2*cfg.DepartJitter))) - cfg.DepartJitter
	}
	c := &Commute{
		home:     cfg.Home,
		work:     cfg.Work,
		dayStart: cfg.DayStart,
		morning:  cfg.MorningDepart + jitter(),
		evening:  cfg.EveningDepart + jitter(),
		distM:    geo.DistanceM(cfg.Home, cfg.Work),
		speed:    cfg.SpeedMS,
	}
	c.travel = time.Duration(c.distM / c.speed * float64(time.Second))
	if c.travel < time.Minute {
		c.travel = time.Minute
	}
	// Keep the cycle well-formed even under extreme jitter: the evening
	// departure must come after the morning arrival.
	if c.evening < c.morning+c.travel {
		c.evening = c.morning + c.travel + time.Hour
	}
	return c
}

// PositionAt returns the commuter's position at t.
func (c *Commute) PositionAt(t time.Time) geo.Point {
	if t.Before(c.dayStart) {
		return c.home
	}
	intoDay := t.Sub(c.dayStart) % (24 * time.Hour)
	switch {
	case intoDay < c.morning:
		return c.home
	case intoDay < c.morning+c.travel:
		return lerp(c.home, c.work, float64(intoDay-c.morning)/float64(c.travel))
	case intoDay < c.evening:
		return c.work
	case intoDay < c.evening+c.travel:
		return lerp(c.work, c.home, float64(intoDay-c.evening)/float64(c.travel))
	default:
		return c.home
	}
}

// AtWork reports whether the commuter is dwelling at work at t — the
// population half of the diurnal traffic curve (see Diurnal).
func (c *Commute) AtWork(t time.Time) bool {
	if t.Before(c.dayStart) {
		return false
	}
	intoDay := t.Sub(c.dayStart) % (24 * time.Hour)
	return intoDay >= c.morning+c.travel && intoDay < c.evening
}

func lerp(a, b geo.Point, frac float64) geo.Point {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return geo.Point{
		Lat: a.Lat + (b.Lat-a.Lat)*frac,
		Lon: a.Lon + (b.Lon-a.Lon)*frac,
	}
}

// Diurnal returns a [0,1] activity weight for the instant: near zero in
// the small hours, ramping through the morning commute to a daytime
// plateau and back down after the evening peak. Chaos scenarios scale
// report rates and traffic by it so tower load follows the city's day.
func Diurnal(t, dayStart time.Time) float64 {
	intoDay := t.Sub(dayStart) % (24 * time.Hour)
	if intoDay < 0 {
		intoDay += 24 * time.Hour
	}
	h := intoDay.Hours()
	// A raised cosine centered on 14:00 with a floor of 0.05: quiet
	// nights, busy afternoons. Simple, smooth, and monotone over each
	// commute shoulder — enough shape to make load diurnal without
	// pretending to be a traffic study.
	w := 0.05 + 0.95*0.5*(1+math.Cos((h-14)/24*2*math.Pi))
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	return w
}

// CrowdEvent is one flash-crowd window: devices under an Attractor are
// pulled to the venue between Start and End, with a linear ramp in and
// out so the surge looks like a crowd walking in, not teleporting.
type CrowdEvent struct {
	Venue      geo.Point
	Start, End time.Time
	// RampIn/RampOut are how long the pull takes to reach full strength
	// and to release (defaults 5 min each).
	RampIn, RampOut time.Duration
	// JitterM spreads the crowd around the venue (default 150 m — a
	// stadium bowl, not a point).
	JitterM float64
}

// Attractor overlays flash-crowd events on a base model: outside every
// event window the device follows its base trajectory; inside one it is
// pulled toward the venue (plus a per-device seeded offset). Events are
// fixed at construction — a chaos scenario knows its schedule up front —
// so the model stays a pure function of time.
type Attractor struct {
	base   Model
	events []CrowdEvent
	dN, dE float64 // per-device venue offset
}

var _ Model = (*Attractor)(nil)

// NewAttractor wraps base with the given crowd events.
func NewAttractor(base Model, seed int64, events []CrowdEvent) *Attractor {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]CrowdEvent, len(events))
	copy(evs, events)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Start.Before(evs[j].Start) })
	jitter := 150.0
	for i := range evs {
		if evs[i].RampIn <= 0 {
			evs[i].RampIn = 5 * time.Minute
		}
		if evs[i].RampOut <= 0 {
			evs[i].RampOut = 5 * time.Minute
		}
		if evs[i].JitterM > 0 {
			jitter = evs[i].JitterM
		}
	}
	return &Attractor{
		base:   base,
		events: evs,
		dN:     rng.NormFloat64() * jitter,
		dE:     rng.NormFloat64() * jitter,
	}
}

// PositionAt blends the base position toward the active event's venue.
func (a *Attractor) PositionAt(t time.Time) geo.Point {
	base := a.base.PositionAt(t)
	for i := range a.events {
		ev := &a.events[i]
		if t.Before(ev.Start) {
			break // events sorted; none later is active
		}
		if !t.Before(ev.End.Add(ev.RampOut)) {
			continue
		}
		pull := 1.0
		if in := t.Sub(ev.Start); in < ev.RampIn {
			pull = float64(in) / float64(ev.RampIn)
		}
		if t.After(ev.End) {
			pull = 1 - float64(t.Sub(ev.End))/float64(ev.RampOut)
		}
		if pull <= 0 {
			continue
		}
		target := geo.Offset(ev.Venue, a.dN, a.dE)
		return lerp(base, target, pull)
	}
	return base
}

// PingPong oscillates between two points with a square wave: Period at A,
// then Period at B, forever — the adversarial trajectory for shard- and
// node-boundary re-homing (a device that flaps across the line every
// period). Phase offsets devices so a fleet of ping-pongers doesn't cross
// in lockstep.
type PingPong struct {
	a, b   geo.Point
	start  time.Time
	period time.Duration
	phase  time.Duration
}

var _ Model = PingPong{}

// NewPingPong builds a flapping model; seed draws the phase offset.
func NewPingPong(a, b geo.Point, start time.Time, period time.Duration, seed int64) PingPong {
	if period <= 0 {
		period = time.Minute
	}
	rng := rand.New(rand.NewSource(seed))
	return PingPong{
		a: a, b: b,
		start:  start,
		period: period,
		phase:  time.Duration(rng.Int63n(int64(period))),
	}
}

// PositionAt returns A or B depending on the half-cycle.
func (p PingPong) PositionAt(t time.Time) geo.Point {
	if t.Before(p.start) {
		return p.a
	}
	cycle := (t.Sub(p.start) + p.phase) / p.period
	if cycle%2 == 0 {
		return p.a
	}
	return p.b
}
