package study

import (
	"strings"
	"testing"
)

func TestSeedSweepAggregates(t *testing.T) {
	sw, err := SeedSweep(RunExperiment1, Config{Devices: 12, Seed: 100}, 3)
	if err != nil {
		t.Fatalf("SeedSweep: %v", err)
	}
	if sw.Experiment != "Experiment 1" {
		t.Fatalf("experiment = %q", sw.Experiment)
	}
	if len(sw.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(sw.Rows))
	}
	for _, r := range sw.Rows {
		if r.Seeds != 3 {
			t.Fatalf("row %s has %d seeds, want 3", r.Label, r.Seeds)
		}
		if r.Min > r.Mean || r.Mean > r.Max {
			t.Fatalf("row %s violates min<=mean<=max: %+v", r.Label, r)
		}
		if r.StdDev < 0 {
			t.Fatalf("row %s has negative sd", r.Label)
		}
	}
}

// TestShapeHoldsAcrossSeeds is the robustness claim of EXPERIMENTS.md:
// the headline orderings survive cohort changes, not just seed 2017.
func TestShapeHoldsAcrossSeeds(t *testing.T) {
	sw, err := SeedSweep(RunExperiment1, Config{Devices: 20, Seed: 500}, 3)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]SweepRow{}
	for _, r := range sw.Rows {
		byLabel[r.Label] = r
	}
	// Even the worst cohort saves substantially.
	if row := byLabel[RowCompleteOverPCS]; row.Min < 0.4 {
		t.Errorf("worst-cohort Complete/PCS saving %.1f%% below 40%%", row.Min*100)
	}
	if row := byLabel[RowCompleteOverPeriodic]; row.Min < 0.7 {
		t.Errorf("worst-cohort Complete/Periodic saving %.1f%% below 70%%", row.Min*100)
	}
	// Complete >= Basic on average.
	if byLabel[RowCompleteOverPCS].Mean < byLabel[RowBasicOverPCS].Mean {
		t.Error("Complete mean saving below Basic across seeds")
	}
}

func TestSeedSweepValidation(t *testing.T) {
	if _, err := SeedSweep(RunExperiment1, Config{}, 0); err == nil {
		t.Fatal("zero seeds accepted")
	}
}

func TestRenderSweep(t *testing.T) {
	sw, err := SeedSweep(RunExperiment2, Config{Devices: 10, Seed: 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSweep(sw)
	if !strings.Contains(out, "across 2 cohorts") || !strings.Contains(out, "±") {
		t.Fatalf("render = %q", out)
	}
}
