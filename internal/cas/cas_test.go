package cas

import (
	"net"
	"strings"
	"testing"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/sensors"
	"senseaid/internal/wire"
)

// scriptServer acks the hello, assigns task IDs, and can push sensed data.
type scriptServer struct {
	t     *testing.T
	ln    net.Listener
	conns chan net.Conn
	// rejectUpdates makes update/delete calls fail.
	rejectUpdates bool
}

func newScriptServer(t *testing.T, rejectUpdates bool) *scriptServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &scriptServer{t: t, ln: ln, conns: make(chan net.Conn, 1), rejectUpdates: rejectUpdates}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		env, err := wire.ReadFrame(nc)
		if err != nil || env.Type != wire.TypeHello {
			_ = nc.Close()
			return
		}
		ack, err := wire.Encode(wire.TypeAck, env.Seq, wire.Ack{})
		if err != nil || wire.WriteFrame(nc, ack) != nil {
			_ = nc.Close()
			return
		}
		s.conns <- nc
		taskN := 0
		for {
			env, err := wire.ReadFrame(nc)
			if err != nil {
				return
			}
			var resp wire.Envelope
			switch {
			case env.Type == wire.TypeSubmitTask:
				taskN++
				resp, err = wire.Encode(wire.TypeAck, env.Seq, wire.Ack{Ref: "task-" + string(rune('0'+taskN))})
			case s.rejectUpdates && (env.Type == wire.TypeUpdateTask || env.Type == wire.TypeDeleteTask):
				resp, err = wire.Encode(wire.TypeError, env.Seq, wire.Error{Message: "unknown task"})
			default:
				resp, err = wire.Encode(wire.TypeAck, env.Seq, wire.Ack{})
			}
			if err != nil || wire.WriteFrame(nc, resp) != nil {
				return
			}
		}
	}()
	return s
}

func (s *scriptServer) addr() string { return s.ln.Addr().String() }

func (s *scriptServer) push(sd wire.SensedData) {
	select {
	case nc := <-s.conns:
		s.conns <- nc
		env, err := wire.Encode(wire.TypeSensedData, 0, sd)
		if err != nil {
			s.t.Fatalf("encode: %v", err)
		}
		if err := wire.WriteFrame(nc, env); err != nil {
			s.t.Fatalf("push: %v", err)
		}
	case <-time.After(2 * time.Second):
		s.t.Fatal("CAS never connected")
	}
}

func spec() wire.TaskSpec {
	return wire.TaskSpec{
		Sensor:           sensors.Barometer,
		SamplingPeriod:   time.Minute,
		SamplingDuration: 10 * time.Minute,
		Center:           geo.CSDepartment,
		AreaRadiusM:      500,
		SpatialDensity:   2,
	}
}

func TestCASTaskLifecycle(t *testing.T) {
	srv := newScriptServer(t, false)
	app, err := Dial(srv.addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = app.Close() }()

	id, err := app.Task(spec())
	if err != nil {
		t.Fatalf("Task: %v", err)
	}
	if !strings.HasPrefix(id, "task-") {
		t.Fatalf("task id = %q", id)
	}
	if err := app.UpdateTaskParam(wire.UpdateTask{TaskID: id, SpatialDensity: 3}); err != nil {
		t.Fatalf("UpdateTaskParam: %v", err)
	}
	if err := app.UpdateTaskParam(wire.UpdateTask{}); err == nil {
		t.Fatal("empty task ID accepted")
	}
	if err := app.DeleteTask(id); err != nil {
		t.Fatalf("DeleteTask: %v", err)
	}
	if err := app.DeleteTask(""); err == nil {
		t.Fatal("empty delete accepted")
	}
}

func TestCASServerErrorsSurface(t *testing.T) {
	srv := newScriptServer(t, true)
	app, err := Dial(srv.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	if err := app.UpdateTaskParam(wire.UpdateTask{TaskID: "task-x"}); err == nil ||
		!strings.Contains(err.Error(), "unknown task") {
		t.Fatalf("server error not surfaced: %v", err)
	}
}

func TestCASDataBacklogReplay(t *testing.T) {
	srv := newScriptServer(t, false)
	app, err := Dial(srv.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()

	// Data arrives before the handler is installed.
	srv.push(wire.SensedData{TaskID: "task-1", DeviceID: "d1"})
	srv.push(wire.SensedData{TaskID: "task-1", DeviceID: "d2"})
	time.Sleep(100 * time.Millisecond)

	got := make(chan string, 4)
	if err := app.ReceiveSensedData(func(sd wire.SensedData) { got <- sd.DeviceID }); err != nil {
		t.Fatalf("ReceiveSensedData: %v", err)
	}
	if err := app.ReceiveSensedData(nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	for _, want := range []string{"d1", "d2"} {
		select {
		case dev := <-got:
			if dev != want {
				t.Fatalf("replayed %q, want %q", dev, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("backlog %q never replayed", want)
		}
	}
	// Live delivery.
	srv.push(wire.SensedData{TaskID: "task-1", DeviceID: "d3"})
	select {
	case dev := <-got:
		if dev != "d3" {
			t.Fatalf("live = %q", dev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("live data never delivered")
	}
}

func TestCASTaskWithoutIDFails(t *testing.T) {
	// A server that acks submissions without a Ref is broken; the
	// library must say so rather than return an empty ID.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		for {
			env, err := wire.ReadFrame(nc)
			if err != nil {
				return
			}
			ack, err := wire.Encode(wire.TypeAck, env.Seq, wire.Ack{})
			if err != nil || wire.WriteFrame(nc, ack) != nil {
				return
			}
		}
	}()
	app, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	if _, err := app.Task(spec()); err == nil {
		t.Fatal("task accepted without a server-assigned ID")
	}
}
