package client

import (
	"net"
	"testing"
	"time"

	"senseaid/internal/faultconn"
	"senseaid/internal/geo"
	"senseaid/internal/netserver"
	"senseaid/internal/sensors"
)

// startRealServer boots a full netserver for daemon-level tests (the
// client package is below netserver in the import graph, so tests here
// may use the real thing instead of a scripted peer).
func startRealServer(t *testing.T) *netserver.Server {
	t.Helper()
	s, err := netserver.Listen(netserver.Config{Addr: "127.0.0.1:0", TickPeriod: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("netserver.Listen: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func testDaemonConfig(addr, id string) DaemonConfig {
	return DaemonConfig{
		Client: Config{
			Addr: addr, DeviceID: id,
			Position: geo.CSDepartment, BatteryPct: 90,
			Sensors: []sensors.Type{sensors.Barometer},
		},
		Sampler: func(typ sensors.Type) (sensors.Reading, error) {
			return sensors.Reading{
				Sensor: typ, Value: 1013.25, Unit: "hPa",
				At: time.Now(), Where: geo.CSDepartment,
			}, nil
		},
		ReportPeriod: 25 * time.Millisecond,
		ReconnectMin: 30 * time.Millisecond,
		ReconnectMax: 200 * time.Millisecond,
	}
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonReconnectsAfterConnKill: killing the daemon's live connection
// makes the supervisor redial, re-register, and resume the service
// thread on the replacement.
func TestDaemonReconnectsAfterConnKill(t *testing.T) {
	s := startRealServer(t)
	d, err := StartDaemon(testDaemonConfig(s.Addr(), "resurrect"))
	if err != nil {
		t.Fatalf("StartDaemon: %v", err)
	}
	t.Cleanup(func() { _ = d.Close() })

	waitUntil(t, 2*time.Second, "first report", func() bool { return d.Reports() >= 1 })

	old := d.Client()
	_ = old.Close() // simulate the link dying under the daemon

	waitUntil(t, 3*time.Second, "reconnect", func() bool { return d.Reconnects() == 1 })
	if d.Client() == old {
		t.Fatal("daemon still holds the dead client after reconnect")
	}
	// The service thread resumed on the new connection.
	base := d.Reports()
	waitUntil(t, 2*time.Second, "reports on new conn", func() bool { return d.Reports() > base })
	if got := s.Status().DeviceConns; got != 1 {
		t.Fatalf("server device conns = %d, want 1", got)
	}
}

// TestDaemonSurvivesFlakyLink drives the daemon through a dialer whose
// every connection is fault-injected to die after a few frames: the
// supervisor must keep cycling reconnects while the service thread keeps
// landing reports between failures.
func TestDaemonSurvivesFlakyLink(t *testing.T) {
	s := startRealServer(t)

	target := 5
	if testing.Short() {
		target = 2
	}

	seed := int64(0)
	cfg := testDaemonConfig(s.Addr(), "flaky")
	cfg.Client.Dialer = func(addr string) (net.Conn, error) {
		nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return nil, err
		}
		seed++
		// Client writes: the hello is raw header+body framing = 1-2,
		// register is one coalesced flush = 3, then state reports at one
		// write each — every connection dies on its second report.
		return faultconn.Wrap(nc, faultconn.Policy{Seed: seed, DropAfterWrites: 5}), nil
	}
	d, err := StartDaemon(cfg)
	if err != nil {
		t.Fatalf("StartDaemon: %v", err)
	}
	t.Cleanup(func() { _ = d.Close() })

	waitUntil(t, 15*time.Second, "reconnect cycles", func() bool {
		return d.Reconnects() >= target
	})
	if d.Reports() == 0 {
		t.Fatal("no report ever landed between failures")
	}
}

// TestDaemonCloseWhileServerGone: closing a daemon whose server vanished
// (supervisor mid-backoff against a dead port) returns promptly instead
// of hanging on a deregister nobody will answer.
func TestDaemonCloseWhileServerGone(t *testing.T) {
	s := startRealServer(t)
	d, err := StartDaemon(testDaemonConfig(s.Addr(), "orphan"))
	if err != nil {
		t.Fatalf("StartDaemon: %v", err)
	}

	_ = s.Close() // server gone; daemon enters its redial loop

	waitUntil(t, 2*time.Second, "daemon notices dead server", func() bool {
		select {
		case <-d.Client().Done():
			return true
		default:
			return false
		}
	})

	closed := make(chan error, 1)
	go func() { closed <- d.Close() }()
	select {
	case <-closed:
	case <-time.After(3 * time.Second):
		t.Fatal("daemon Close hung with server gone")
	}
}

// TestReconnectDisabled: a negative ReconnectMin keeps the old
// fail-dead behaviour for callers that manage their own lifecycle.
func TestReconnectDisabled(t *testing.T) {
	s := startRealServer(t)
	cfg := testDaemonConfig(s.Addr(), "fatalist")
	cfg.ReconnectMin = -1
	d, err := StartDaemon(cfg)
	if err != nil {
		t.Fatalf("StartDaemon: %v", err)
	}
	t.Cleanup(func() { _ = d.Close() })

	_ = d.Client().Close()
	time.Sleep(300 * time.Millisecond)
	if got := d.Reconnects(); got != 0 {
		t.Fatalf("reconnects = %d with reconnection disabled, want 0", got)
	}
}
