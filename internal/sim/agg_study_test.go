package sim

import (
	"reflect"
	"testing"
	"time"

	"senseaid/internal/agg"
	"senseaid/internal/core"
	"senseaid/internal/geo"
	"senseaid/internal/sensors"
	"senseaid/internal/simclock"
)

// TestHundredCampaignSharedAggregationTier runs 100 concurrent
// campaigns through the full middleware with one shared streaming
// aggregation tier hanging off the core's delivery tap — the
// multi-tenant shape the tier exists for — and checks that every
// campaign's streamed windows match the post-hoc batch computation over
// the same delivered readings exactly. Windows advance while the run is
// live (lagging two windows behind the newest delivery, covering the
// tail-upload delay), so the equivalence covers mid-run emission, not
// just a final flush.
func TestHundredCampaignSharedAggregationTier(t *testing.T) {
	const window = 10 * time.Minute
	aggCfg := agg.Config{Window: window}
	tier := agg.New(aggCfg)

	streamed := make(map[string][]agg.Window)
	subscribed := make(map[string]bool)
	var samples []agg.Sample
	var newest time.Time

	cfg := core.DefaultServerConfig()
	cfg.AggTap = func(task core.TaskID, region, _ string, r sensors.Reading) {
		id := string(task)
		if !subscribed[id] {
			// Per-campaign subscription, opened on the campaign's first
			// delivery — before any window holding its data can close.
			subscribed[id] = true
			tier.Subscribe(agg.Filter{Task: id}, func(p agg.Push) {
				streamed[id] = append(streamed[id], p.Windows...)
			})
		}
		tier.Ingest(id, region, r)
		samples = append(samples, agg.Sample{Task: id, Region: region, Reading: r})
		if r.At.After(newest) {
			newest = r.At
			tier.Advance(newest.Add(-2 * window))
		}
	}

	// 100 campaigns over the campus, varied in start, footprint, cadence,
	// and density, all sharing the one cohort and the one tier.
	var tasks []core.Task
	for i := 0; i < 100; i++ {
		start := simclock.Epoch.Add(time.Duration(i%3) * 5 * time.Minute)
		tasks = append(tasks, core.Task{
			Sensor:         sensors.Barometer,
			SamplingPeriod: 10 * time.Minute,
			Start:          start,
			End:            start.Add(30 * time.Minute),
			Area: geo.Circle{
				Center:  geo.Offset(geo.CampusCenter(), float64((i%5)-2)*100, float64((i%7)-3)*100),
				RadiusM: 500 + float64(i%4)*250,
			},
			SpatialDensity: 1 + i%2,
		})
	}

	w, err := NewWorld(WorldConfig{NumDevices: 40, Seed: 7})
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	res, err := SenseAid{Server: cfg}.Run(w, tasks)
	if err != nil {
		t.Fatalf("SenseAid.Run: %v", err)
	}
	if res.Readings == 0 {
		t.Fatal("the study delivered no readings")
	}
	// Close every remaining window.
	tier.Advance(newest.Add(2 * window))

	if late := tier.Stats().LateSamples; late != 0 {
		t.Fatalf("%d samples arrived late for the 2-window advance lag; the equivalence below would be vacuous", late)
	}
	if len(samples) != res.Readings {
		t.Fatalf("tap saw %d readings, run delivered %d", len(samples), res.Readings)
	}

	// Ground truth: the same samples, grouped and folded post hoc.
	batch := make(map[string][]agg.Window)
	for _, bw := range agg.Batch(samples, aggCfg) {
		batch[bw.Key.Task] = append(batch[bw.Key.Task], bw)
	}

	activeCampaigns := 0
	for id, want := range batch {
		got := append([]agg.Window(nil), streamed[id]...)
		agg.SortWindows(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("campaign %s: streamed windows diverge from batch\nstreamed: %+v\nbatch:    %+v", id, got, want)
		}
		activeCampaigns++
	}
	// And no campaign streamed windows that batch does not know about.
	for id, ws := range streamed {
		if len(ws) > 0 && len(batch[id]) == 0 {
			t.Fatalf("campaign %s streamed %d windows absent from the batch ground truth", id, len(ws))
		}
	}
	// Multi-tenancy must be real: the shared cohort cannot serve all 100
	// campaigns every round (budgets, density), but a healthy majority
	// must have produced aggregates.
	if activeCampaigns < 50 {
		t.Fatalf("only %d/100 campaigns produced aggregate windows", activeCampaigns)
	}
	t.Logf("100 campaigns: %d active, %d readings, %d streamed window emissions, %d series",
		activeCampaigns, res.Readings, len(samples), tier.Stats().Series)
}
