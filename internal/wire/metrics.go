package wire

import "senseaid/internal/obs"

// met counts protocol faults and framed traffic on the process-global
// registry: wire has no injection point (Encode/ReadFrame are free
// functions), and every serving binary exposes obs.Default() anyway.
//
// senseaid_wire_errors_total carries one stage label per failure class:
// encode (marshalling a payload or envelope), decode (parsing bytes that
// arrived intact), frame (malformed or oversized framing), and io (the
// socket failed mid-frame).
var met = struct {
	errEncode *obs.Counter
	errDecode *obs.Counter
	errFrame  *obs.Counter
	errIO     *obs.Counter
	bytesTx   *obs.Counter
	bytesRx   *obs.Counter
	coalesced *obs.Counter
	flushes   *obs.Counter
}{
	errEncode: obs.Default().Counter("senseaid_wire_errors_total",
		"Wire protocol faults by stage.", obs.Labels{"stage": "encode"}),
	errDecode: obs.Default().Counter("senseaid_wire_errors_total",
		"Wire protocol faults by stage.", obs.Labels{"stage": "decode"}),
	errFrame: obs.Default().Counter("senseaid_wire_errors_total",
		"Wire protocol faults by stage.", obs.Labels{"stage": "frame"}),
	errIO: obs.Default().Counter("senseaid_wire_errors_total",
		"Wire protocol faults by stage.", obs.Labels{"stage": "io"}),
	bytesTx: obs.Default().Counter("senseaid_wire_bytes_total",
		"Framed bytes moved, including the length prefix.", obs.Labels{"dir": "tx"}),
	bytesRx: obs.Default().Counter("senseaid_wire_bytes_total",
		"Framed bytes moved, including the length prefix.", obs.Labels{"dir": "rx"}),
	coalesced: obs.Default().Counter("senseaid_wire_frames_coalesced_total",
		"Frames that shared a flush with at least one other frame.", nil),
	flushes: obs.Default().Counter("senseaid_wire_flushes_total",
		"Coalescer flushes (each is one write syscall).", nil),
}
