// Package study reproduces the paper's evaluation: the 60-student user
// study (Experiments 1-3, Figures 7-13, Table 2), the PCS accuracy model
// (Figure 14), the motivational app case study (Figure 2), the survey
// (Figure 1) and the tail-time trace (Figure 6). Each Run* function builds
// fresh simulated cohorts, executes the frameworks, and returns structured
// results; report.go renders them as text.
//
// As in the paper, each framework runs on its own 20-device cohort (three
// sets of 20 students). The cohorts get different seeds, so — like the
// paper's Figure 7 — small differences in qualified-device counts between
// frameworks reflect different participants, not framework behaviour.
package study

import (
	"fmt"
	"time"

	"senseaid/internal/core"
	"senseaid/internal/geo"
	"senseaid/internal/sensors"
	"senseaid/internal/sim"
	"senseaid/internal/simclock"
)

// Config shapes a study run.
type Config struct {
	// Devices per framework cohort (paper: 20).
	Devices int
	// Seed makes the whole study reproducible.
	Seed int64
}

// DefaultConfig is the paper's setup.
func DefaultConfig() Config { return Config{Devices: 20, Seed: 2017} }

func (c Config) withDefaults() Config {
	if c.Devices <= 0 {
		c.Devices = 20
	}
	if c.Seed == 0 {
		c.Seed = 2017
	}
	return c
}

// Comparison holds the four frameworks' results for one test (one setting
// of the varying parameter).
type Comparison struct {
	// Param is the varying parameter's value for this test.
	Param float64 `json:"param"`
	// ParamLabel renders the parameter (e.g. "500 m", "5 min").
	ParamLabel string `json:"param_label"`

	Periodic *sim.RunResult `json:"periodic"`
	PCS      *sim.RunResult `json:"pcs"`
	Basic    *sim.RunResult `json:"basic"`
	Complete *sim.RunResult `json:"complete"`
}

// The paper's four standing comparison rows (Table 2's numbering).
const (
	RowBasicOverPeriodic    = "1: Sense-Aid Basic/Periodic"
	RowCompleteOverPeriodic = "2: Sense-Aid Complete/Periodic"
	RowBasicOverPCS         = "3: Sense-Aid Basic/PCS"
	RowCompleteOverPCS      = "4: Sense-Aid Complete/PCS"
)

// Saving returns the energy saving of one framework total over another:
// 1 - (sense-aid energy / comparison energy).
func Saving(senseAidJ, otherJ float64) float64 {
	if otherJ <= 0 {
		return 0
	}
	return 1 - senseAidJ/otherJ
}

// Savings extracts the four comparison savings from one test.
func (c *Comparison) Savings() map[string]float64 {
	return map[string]float64{
		RowBasicOverPeriodic:    Saving(c.Basic.TotalCrowdJ, c.Periodic.TotalCrowdJ),
		RowCompleteOverPeriodic: Saving(c.Complete.TotalCrowdJ, c.Periodic.TotalCrowdJ),
		RowBasicOverPCS:         Saving(c.Basic.TotalCrowdJ, c.PCS.TotalCrowdJ),
		RowCompleteOverPCS:      Saving(c.Complete.TotalCrowdJ, c.PCS.TotalCrowdJ),
	}
}

// barometerTask builds the study's standard task shape.
func barometerTask(center geo.Point, radiusM float64, period, duration time.Duration, density int) core.Task {
	return core.Task{
		Sensor:         sensors.Barometer,
		SamplingPeriod: period,
		Start:          simclock.Epoch,
		End:            simclock.Epoch.Add(duration),
		Area:           geo.Circle{Center: center, RadiusM: radiusM},
		SpatialDensity: density,
	}
}

// runComparison executes all four frameworks on fresh per-framework
// cohorts for the same task set.
func runComparison(cfg Config, tasks []core.Task) (*Comparison, error) {
	cmp := &Comparison{}
	type slot struct {
		fw   sim.Framework
		seed int64
		out  **sim.RunResult
	}
	slots := []slot{
		{sim.Periodic{}, cfg.Seed + 100, &cmp.Periodic},
		{sim.PCS{Seed: cfg.Seed}, cfg.Seed + 200, &cmp.PCS},
		{sim.SenseAid{Variant: sim.Basic}, cfg.Seed + 300, &cmp.Basic},
		{sim.SenseAid{Variant: sim.Complete}, cfg.Seed + 300, &cmp.Complete},
	}
	for _, s := range slots {
		w, err := sim.NewWorld(sim.WorldConfig{NumDevices: cfg.Devices, Seed: s.seed})
		if err != nil {
			return nil, fmt.Errorf("study: world: %w", err)
		}
		ts := make([]core.Task, len(tasks))
		copy(ts, tasks)
		res, err := s.fw.Run(w, ts)
		if err != nil {
			return nil, fmt.Errorf("study: %s: %w", s.fw.Name(), err)
		}
		*s.out = res
	}
	return cmp, nil
}

// aggregate computes avg/min/max of a slice.
func aggregate(vals []float64) (avg, min, max float64) {
	if len(vals) == 0 {
		return 0, 0, 0
	}
	min, max = vals[0], vals[0]
	for _, v := range vals {
		avg += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	avg /= float64(len(vals))
	return avg, min, max
}
