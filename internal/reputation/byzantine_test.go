package reputation

import (
	"testing"
)

// The byzantine reporter the chaos campaigns model: alternate a good
// upload with a garbage one, forever. With a symmetric EWMA this
// pattern parks the score near the midpoint of the two rewards and the
// device keeps getting selected; the asymmetric BadAlpha fold must sink
// it below any sane MinReliability cutoff instead.

func TestAlternatingReporterSinksBelowCutoff(t *testing.T) {
	for _, first := range []Outcome{OutcomeAccepted, OutcomeRejected} {
		tr := NewTracker(Config{})
		outcomes := [2]Outcome{first, OutcomeRejected}
		if first == OutcomeRejected {
			outcomes[1] = OutcomeAccepted
		}
		for i := 0; i < 40; i++ {
			tr.Record("byz", outcomes[i%2])
		}
		if got := tr.Score("byz"); got >= 0.5 {
			t.Fatalf("alternating reporter (starting %v) holds score %.3f, want < 0.5", first, got)
		}
	}
}

func TestAlternatingWithMissedSinksFurther(t *testing.T) {
	rej, missed := NewTracker(Config{}), NewTracker(Config{})
	for i := 0; i < 40; i++ {
		o := OutcomeAccepted
		if i%2 == 1 {
			o = OutcomeRejected
		}
		rej.Record("d", o)
		if i%2 == 1 {
			o = OutcomeMissed
		}
		missed.Record("d", o)
	}
	if missed.Score("d") >= rej.Score("d") {
		t.Fatalf("missed-alternator %.3f not below rejected-alternator %.3f",
			missed.Score("d"), rej.Score("d"))
	}
}

func TestBadNewsTravelsFaster(t *testing.T) {
	up, down := NewTracker(Config{}), NewTracker(Config{})
	up.Record("d", OutcomeAccepted)
	down.Record("d", OutcomeRejected)
	rise := up.Score("d") - 0.8
	drop := 0.8 - down.Score("d")
	if drop <= rise {
		t.Fatalf("one rejection drops %.3f, one accept rises %.3f — bad news must weigh more", drop, rise)
	}
}

func TestConsistentGoodStaysHigh(t *testing.T) {
	tr := NewTracker(Config{})
	for i := 0; i < 20; i++ {
		tr.Record("good", OutcomeAccepted)
	}
	if got := tr.Score("good"); got < 0.95 {
		t.Fatalf("consistently good reporter scores %.3f, want >= 0.95", got)
	}
}

func TestBadAlphaConfigurable(t *testing.T) {
	// An explicitly symmetric tracker (BadAlpha == Alpha) reproduces the
	// old midpoint behavior — the knob exists for experiments that need it.
	// 41 records so the cycle ends on its post-accept peak: symmetric
	// keeps that peak above the 0.5 cutoff (the inflation the default
	// asymmetric fold eliminates — its peak converges near 0.46).
	sym := NewTracker(Config{Alpha: 0.25, BadAlpha: 0.25})
	for i := 0; i < 41; i++ {
		o := OutcomeAccepted
		if i%2 == 1 {
			o = OutcomeRejected
		}
		sym.Record("byz", o)
	}
	if got := sym.Score("byz"); got < 0.5 {
		t.Fatalf("symmetric tracker sank alternator to %.3f; BadAlpha override not honoured", got)
	}
	// Out-of-range BadAlpha falls back to the 2*Alpha default.
	def := NewTracker(Config{Alpha: 0.25, BadAlpha: 7})
	def.Record("d", OutcomeMissed)
	if got := def.Score("d"); got != 0.8*0.5 {
		t.Fatalf("defaulted BadAlpha score = %.3f, want %.3f", got, 0.8*0.5)
	}
}

func TestRecoveryStillPossibleUnderAsymmetry(t *testing.T) {
	// Asymmetric decay must not make reputation a one-way trapdoor: a
	// device that genuinely reforms climbs back over the cutoff.
	tr := NewTracker(Config{})
	for i := 0; i < 10; i++ {
		tr.Record("reformed", OutcomeMissed)
	}
	if tr.Score("reformed") > 0.1 {
		t.Fatalf("ten misses left score %.3f, want near zero", tr.Score("reformed"))
	}
	for i := 0; i < 15; i++ {
		tr.Record("reformed", OutcomeAccepted)
	}
	if got := tr.Score("reformed"); got < 0.9 {
		t.Fatalf("reformed device stuck at %.3f, want >= 0.9", got)
	}
}
