package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"
)

// AdminConfig parameterises the admin HTTP server.
type AdminConfig struct {
	// Addr is the listen address, e.g. "127.0.0.1:7118". ":0" picks a
	// free port (see AdminServer.Addr).
	Addr string
	// Registry backs /metrics; nil uses Default().
	Registry *Registry
	// Health, when set, is consulted by /healthz; a non-nil error turns
	// the probe into a 503 carrying the error text.
	Health func() error
	// Status, when set, supplies the payload of /statusz (current tasks,
	// device counts, selection summaries — whatever the serving layer
	// wants operators to see). The value is rendered as JSON.
	Status func() any
}

// AdminServer is a running admin endpoint: /metrics (Prometheus text, or
// JSON with ?format=json), /healthz, and /statusz.
type AdminServer struct {
	ln      net.Listener
	srv     *http.Server
	started time.Time
}

// ServeAdmin binds the admin endpoint and serves it on a background
// goroutine until Close.
func ServeAdmin(cfg AdminConfig) (*AdminServer, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("obs: empty admin address")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = Default()
	}
	a := &AdminServer{started: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(reg.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Health != nil {
			if err := cfg.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{
			"uptime_seconds": time.Since(a.started).Seconds(),
			"go_version":     runtime.Version(),
			"goroutines":     runtime.NumGoroutine(),
		}
		if cfg.Status != nil {
			body["status"] = cfg.Status()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", cfg.Addr, err)
	}
	a.ln = ln
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = a.srv.Serve(ln) }()
	return a, nil
}

// Addr returns the bound listen address.
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close stops the admin server immediately.
func (a *AdminServer) Close() error { return a.srv.Close() }
