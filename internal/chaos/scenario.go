package chaos

import (
	"fmt"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/mobility"
	"senseaid/internal/simclock"
)

// EventKind names one fault-injection action.
type EventKind int

const (
	// EvTowerOutage kills Count randomly chosen towers.
	EvTowerOutage EventKind = iota
	// EvTowerRestore revives every dead tower.
	EvTowerRestore
	// EvTowerDegrade sets a Loss probability on Count random towers.
	EvTowerDegrade
	// EvCrashPrimaries SIGKILLs the whole sharded deployment: the live
	// incarnation is abandoned where it stands (no flush, no snapshot)
	// and a fresh one recovers from the last snapshots plus the shipped
	// journals, then rebuilds routing.
	EvCrashPrimaries
	// EvSnapshot captures per-shard snapshots and rotates the journals —
	// the background snapshotter's cadence, which bounds replay work.
	EvSnapshot
	// EvCASStorm is a campaign-administration storm: Count tasks
	// submitted in one burst (with idempotent resubmits, modeling a CAS
	// reconnecting and reclaiming), and half of the previous storm's
	// tasks deleted.
	EvCASStorm
)

func (k EventKind) String() string {
	switch k {
	case EvTowerOutage:
		return "tower-outage"
	case EvTowerRestore:
		return "tower-restore"
	case EvTowerDegrade:
		return "tower-degrade"
	case EvCrashPrimaries:
		return "crash-primaries"
	case EvSnapshot:
		return "snapshot"
	case EvCASStorm:
		return "cas-storm"
	default:
		return fmt.Sprintf("event-%d", int(k))
	}
}

// Event is one scheduled fault. Targets are drawn with the scenario's
// seeded RNG at fire time, so the same seed always hits the same towers.
type Event struct {
	// At is the offset into the run when the event fires.
	At time.Duration
	// Kind selects the action.
	Kind EventKind
	// Count sizes the action (towers to fail/degrade, tasks to storm).
	Count int
	// Loss is the drop probability EvTowerDegrade installs.
	Loss float64
}

// Scenario is one reproducible chaos campaign: the city to build, the
// steady-state load to run, and the fault schedule to inject.
type Scenario struct {
	Name string
	// Seed fixes every random draw in the run (fleet behavior, tower
	// picks, reading noise). The city uses City.Seed, normally derived
	// from this one.
	Seed int64
	City CityConfig
	// Duration and Tick bound the virtual soak: Duration/Tick steps.
	Duration time.Duration
	Tick     time.Duration
	// ReportEvery staggers state reports: a device reports every
	// ReportEvery ticks (default 4), offset by its index.
	ReportEvery int
	// TasksPerRegion and Density shape the steady-state sensing load.
	TasksPerRegion int
	Density        int
	// Events is the fault schedule, fired in At order.
	Events []Event
}

func (sc *Scenario) fill() {
	if sc.Tick <= 0 {
		sc.Tick = 30 * time.Second
	}
	if sc.Duration <= 0 {
		sc.Duration = 30 * time.Minute
	}
	if sc.ReportEvery <= 0 {
		sc.ReportEvery = 4
	}
	if sc.TasksPerRegion <= 0 {
		sc.TasksPerRegion = 2
	}
	if sc.Density <= 0 {
		sc.Density = 3
	}
	if sc.City.Seed == 0 {
		sc.City.Seed = sc.Seed + 1
	}
	if sc.City.Start.IsZero() {
		sc.City.Start = simclock.Epoch
	}
}

// TowerOutageScenario is a rolling-outage campaign: a wave of tower
// kills opens coverage holes mid-run, a degradation wave follows, and
// everything is restored before the drain so stranded devices re-attach.
func TowerOutageScenario(seed int64, devices int) Scenario {
	return Scenario{
		Name: "tower-outage-wave",
		Seed: seed,
		City: CityConfig{Devices: devices},
		Events: []Event{
			{At: 2 * time.Minute, Kind: EvSnapshot},
			{At: 6 * time.Minute, Kind: EvTowerOutage, Count: 8},
			{At: 10 * time.Minute, Kind: EvTowerDegrade, Count: 12, Loss: 0.4},
			{At: 16 * time.Minute, Kind: EvTowerOutage, Count: 6},
			{At: 22 * time.Minute, Kind: EvTowerRestore},
		},
	}
}

// CrashScenario SIGKILLs the primaries twice: once against a warm
// snapshot, once against a journal that has grown since — proving
// recovery is not a one-shot trick.
func CrashScenario(seed int64, devices int) Scenario {
	return Scenario{
		Name: "primary-crash-loop",
		Seed: seed,
		City: CityConfig{Devices: devices},
		Events: []Event{
			{At: 3 * time.Minute, Kind: EvSnapshot},
			{At: 8 * time.Minute, Kind: EvCrashPrimaries},
			{At: 14 * time.Minute, Kind: EvSnapshot},
			{At: 20 * time.Minute, Kind: EvCrashPrimaries},
		},
	}
}

// ByzantineScenario concentrates liars in a small fleet with dense
// tasks, so byzantine devices are selected repeatedly and the
// reputation bleed-out is observable within the soak.
func ByzantineScenario(seed int64, devices int) Scenario {
	return Scenario{
		Name: "byzantine-flood",
		Seed: seed,
		City: CityConfig{
			Devices: devices,
			Mix:     FleetMix{Stationary: 0.6, Byzantine: 0.15, ClockSkewed: 0.1},
		},
		Density: 8,
		Events: []Event{
			{At: 2 * time.Minute, Kind: EvSnapshot},
			{At: 12 * time.Minute, Kind: EvCASStorm, Count: 6},
		},
	}
}

// FlashCrowdScenario pulls a third of the commuters to a stadium on the
// east side mid-run — a load spike on one shard and a re-homing wave as
// the crowd crosses the boundary — then kills the venue's towers at
// peak attendance.
func FlashCrowdScenario(seed int64, devices int) Scenario {
	start := simclock.Epoch
	venue := geo.Offset(geo.CSDepartment, 1200, 3000)
	return Scenario{
		Name: "flash-crowd",
		Seed: seed,
		City: CityConfig{
			Devices: devices,
			Start:   start,
			CrowdEvents: []mobility.CrowdEvent{{
				Venue: venue,
				Start: start.Add(8 * time.Minute),
				End:   start.Add(22 * time.Minute),
			}},
		},
		Events: []Event{
			{At: 2 * time.Minute, Kind: EvSnapshot},
			{At: 14 * time.Minute, Kind: EvTowerOutage, Count: 4},
			{At: 20 * time.Minute, Kind: EvTowerRestore},
		},
	}
}

// CityWideScenario is the acceptance soak: tower outages, primary
// SIGKILLs, byzantine and clock-skewed reporters, a flash crowd, and a
// CAS storm in one seeded run. This is what ci.sh time-boxes.
func CityWideScenario(seed int64, devices int) Scenario {
	start := simclock.Epoch
	venue := geo.Offset(geo.CSDepartment, 800, 2500)
	return Scenario{
		Name:     "city-wide",
		Seed:     seed,
		Duration: 40 * time.Minute,
		City: CityConfig{
			Devices: devices,
			Start:   start,
			CrowdEvents: []mobility.CrowdEvent{{
				Venue: venue,
				Start: start.Add(18 * time.Minute),
				End:   start.Add(30 * time.Minute),
			}},
		},
		Events: []Event{
			{At: 2 * time.Minute, Kind: EvSnapshot},
			{At: 5 * time.Minute, Kind: EvTowerOutage, Count: 6},
			{At: 9 * time.Minute, Kind: EvCASStorm, Count: 8},
			{At: 12 * time.Minute, Kind: EvCrashPrimaries},
			{At: 16 * time.Minute, Kind: EvTowerDegrade, Count: 10, Loss: 0.3},
			{At: 20 * time.Minute, Kind: EvSnapshot},
			{At: 24 * time.Minute, Kind: EvTowerOutage, Count: 5},
			{At: 26 * time.Minute, Kind: EvCrashPrimaries},
			{At: 30 * time.Minute, Kind: EvTowerRestore},
			{At: 33 * time.Minute, Kind: EvCASStorm, Count: 4},
		},
	}
}
