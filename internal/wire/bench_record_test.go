package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/sensors"
)

// benchSchedule and benchUpload are the two hot frame shapes on the
// wire: the server's per-request dispatch and the device's reading
// upload (with trace context, as the production path carries it).
func benchSchedule() Schedule {
	return Schedule{
		RequestID: "task-42#7",
		TaskID:    "task-42",
		Sensor:    sensors.Barometer,
		Due:       time.Unix(1754699990, 0).UTC(),
		Deadline:  time.Unix(1754700000, 0).UTC(),
		TraceID:   "00112233445566778899aabbccddeeff",
		SpanID:    "0123456789abcdef",
	}
}

func benchUpload() SenseData {
	return SenseData{
		RequestID: "task-42#7",
		Reading: sensors.Reading{
			Sensor: sensors.Barometer,
			Value:  1013.25,
			Unit:   "hPa",
			At:     time.Unix(1754700000, 123456789).UTC(),
			Where:  geo.CSDepartment,
		},
		TraceID: "00112233445566778899aabbccddeeff",
		SpanID:  "0123456789abcdef",
	}
}

// codecRoundTrip is one full frame lifecycle: encode the payload,
// append the frame, read it back, decode the payload — both ends of
// one message as the RPC layer performs them.
func codecRoundTrip(tb testing.TB, c Codec, mt MsgType, payload interface{}, out interface{}, frame *[]byte) int {
	env, err := c.Encode(mt, 7, payload)
	if err != nil {
		tb.Fatal(err)
	}
	*frame, err = c.AppendFrame((*frame)[:0], env)
	if err != nil {
		tb.Fatal(err)
	}
	got, err := c.ReadFrame(bytes.NewReader(*frame))
	if err != nil {
		tb.Fatal(err)
	}
	if err := Decode(got, out); err != nil {
		tb.Fatal(err)
	}
	return len(*frame)
}

// BenchmarkCodecRoundTrip measures encode+frame+read+decode for the
// two hot message shapes under both codecs.
func BenchmarkCodecRoundTrip(b *testing.B) {
	cases := []struct {
		name    string
		mt      MsgType
		payload interface{}
		out     func() interface{}
	}{
		{"schedule", TypeSchedule, benchSchedule(), func() interface{} { return &Schedule{} }},
		{"upload", TypeSenseData, benchUpload(), func() interface{} { return &SenseData{} }},
	}
	for _, codec := range []Codec{JSON, Binary} {
		for _, c := range cases {
			b.Run(fmt.Sprintf("%s/%s", codec.Name(), c.name), func(b *testing.B) {
				b.ReportAllocs()
				var frame []byte
				out := c.out()
				for i := 0; i < b.N; i++ {
					codecRoundTrip(b, codec, c.mt, c.payload, out, &frame)
				}
			})
		}
	}
}

// coalesceWrites pushes a burst of notify frames through a coalescer
// with the given interval and returns how many write syscalls it took.
// Interval 0 is the uncoalesced baseline (one write per frame); a
// nonzero interval batches the burst behind explicit flushes the way
// the netserver tick does.
func coalesceWrites(tb testing.TB, interval time.Duration, burst, bursts int) int {
	nc := &countingConn{}
	co := NewCoalescer(nc, Binary, CoalescerConfig{Interval: interval})
	defer func() { _ = co.Close() }()
	env, err := Binary.Encode(TypeSchedule, 0, benchSchedule())
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < bursts; i++ {
		for j := 0; j < burst; j++ {
			if err := co.Send(env, false, nil); err != nil {
				tb.Fatal(err)
			}
		}
		if interval > 0 {
			if err := co.Flush(); err != nil {
				tb.Fatal(err)
			}
		}
	}
	w, _ := nc.stats()
	return w
}

// wireBenchRecord is one measured case in BENCH_wire.json.
type wireBenchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	FrameBytes  int     `json:"frame_bytes"`
}

// TestRecordWireBench runs the codec benchmark matrix and writes
// BENCH_wire.json so the wire-cost trajectory is recorded in CI. It is
// gated on SENSEAID_BENCH_OUT (ci.sh sets it); besides recording, it
// FAILS when the binary codec's frame is not at least 2x smaller than
// JSON's for either hot shape, when binary allocates at least as much
// as JSON per round-trip, or when coalescing stops cutting write
// syscalls by at least 2x on a notify burst.
func TestRecordWireBench(t *testing.T) {
	out := os.Getenv("SENSEAID_BENCH_OUT")
	if out == "" {
		t.Skip("SENSEAID_BENCH_OUT not set; benchmark recording runs from ci.sh")
	}
	cases := []struct {
		name    string
		mt      MsgType
		payload interface{}
		out     func() interface{}
	}{
		{"schedule", TypeSchedule, benchSchedule(), func() interface{} { return &Schedule{} }},
		{"upload", TypeSenseData, benchUpload(), func() interface{} { return &SenseData{} }},
	}
	var records []wireBenchRecord
	byName := make(map[string]wireBenchRecord)
	for _, codec := range []Codec{JSON, Binary} {
		for _, c := range cases {
			name := fmt.Sprintf("%s/%s", codec.Name(), c.name)
			var frameBytes int
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				var frame []byte
				dst := c.out()
				for i := 0; i < b.N; i++ {
					frameBytes = codecRoundTrip(b, codec, c.mt, c.payload, dst, &frame)
				}
			})
			rec := wireBenchRecord{
				Name:        name,
				NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				FrameBytes:  frameBytes,
			}
			records = append(records, rec)
			byName[name] = rec
			t.Logf("%s: %.0f ns/op, %d allocs/op, %d B/op, %d-byte frame",
				rec.Name, rec.NsPerOp, rec.AllocsPerOp, rec.BytesPerOp, rec.FrameBytes)
		}
	}

	// Gate 1: the binary frame carries the same payload in <= half the
	// bytes — the codec's reason to exist.
	for _, c := range cases {
		j := byName["json/"+c.name]
		b := byName["binary/"+c.name]
		if b.FrameBytes*2 > j.FrameBytes {
			t.Errorf("%s: binary frame is %dB vs JSON %dB — lost the 2x size advantage",
				c.name, b.FrameBytes, j.FrameBytes)
		}
		// Gate 2: binary must also allocate less per round-trip.
		if b.AllocsPerOp >= j.AllocsPerOp {
			t.Errorf("%s: binary round-trip allocates %d/op vs JSON %d/op — no hygiene win",
				c.name, b.AllocsPerOp, j.AllocsPerOp)
		}
	}

	// Gate 3: coalescing a 32-frame notify burst must use at most half
	// the write syscalls of frame-per-write.
	const burst, bursts = 32, 8
	base := coalesceWrites(t, 0, burst, bursts)
	batched := coalesceWrites(t, time.Hour, burst, bursts)
	writeRatio := float64(base) / float64(batched)
	if writeRatio < 2 {
		t.Errorf("coalescing: %d writes vs %d uncoalesced (%.1fx) — want >= 2x fewer syscalls",
			batched, base, writeRatio)
	}
	t.Logf("coalescing: %d-frame bursts took %d writes coalesced vs %d uncoalesced (%.1fx)",
		burst, batched, base, writeRatio)

	doc := struct {
		Benchmark  string            `json:"benchmark"`
		Go         string            `json:"go"`
		WriteRatio float64           `json:"write_syscall_ratio_uncoalesced_over_coalesced"`
		Cases      []wireBenchRecord `json:"cases"`
	}{
		Benchmark:  "BenchmarkCodecRoundTrip (internal/wire)",
		Go:         runtime.Version(),
		WriteRatio: writeRatio,
		Cases:      records,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
