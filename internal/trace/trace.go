// Package trace records radio-state and packet timelines and renders them
// as text — the reproduction of the paper's Figure 6, which visualises a
// crowdsensing upload riding the LTE tail of regular traffic (the figure
// the authors produced with AT&T's ARO tool).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"senseaid/internal/radio"
)

// EventKind distinguishes timeline rows.
type EventKind int

// Kinds of timeline events.
const (
	KindStateChange EventKind = iota + 1
	KindPacket
)

// Event is one timeline entry.
type Event struct {
	At    time.Time
	Kind  EventKind
	State radio.RRCState // for state changes
	Cause radio.Cause    // traffic cause behind a state change
	Label string         // for packets: "regular uplink", "crowdsensing", ...
	Bytes int
}

// Recorder accumulates events from a radio machine and packet hooks.
type Recorder struct {
	start  time.Time
	events []Event
}

// NewRecorder returns a recorder; timestamps render relative to start.
func NewRecorder(start time.Time) *Recorder {
	return &Recorder{start: start}
}

// Attach subscribes the recorder to a radio machine's transitions.
func (r *Recorder) Attach(m *radio.Machine) {
	m.OnTransition(func(tr radio.Transition) {
		r.events = append(r.events, Event{At: tr.At, Kind: KindStateChange, State: tr.State, Cause: tr.Cause})
	})
}

// Packet records one transfer.
func (r *Recorder) Packet(at time.Time, label string, bytes int) {
	r.events = append(r.events, Event{At: at, Kind: KindPacket, Label: label, Bytes: bytes})
}

// Events returns the recorded events in time order.
func (r *Recorder) Events() []Event {
	out := make([]Event, len(r.events))
	copy(out, r.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// StateAt returns the radio state in effect at an offset from start,
// assuming the radio began idle.
func (r *Recorder) StateAt(offset time.Duration) radio.RRCState {
	at := r.start.Add(offset)
	state := radio.StateIdle
	for _, e := range r.Events() {
		if e.At.After(at) {
			break
		}
		if e.Kind == KindStateChange {
			state = e.State
		}
	}
	return state
}

// TailDurations returns the length of every completed tail period
// (entering StateTail to the following StateIdle).
func (r *Recorder) TailDurations() []time.Duration {
	var out []time.Duration
	var tailStart time.Time
	inTail := false
	for _, e := range r.Events() {
		if e.Kind != KindStateChange {
			continue
		}
		switch e.State {
		case radio.StateTail:
			if !inTail {
				tailStart = e.At
				inTail = true
			}
		case radio.StateIdle:
			if inTail {
				out = append(out, e.At.Sub(tailStart))
				inTail = false
			}
		case radio.StatePromoting, radio.StateConnected:
			inTail = false
		}
	}
	return out
}

// Render prints the timeline as aligned text rows, one per event, with
// seconds offsets from the recorder's start — the textual equivalent of
// Figure 6.
func (r *Recorder) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s  %-22s %s\n", "t(s)", "event", "detail")
	for _, e := range r.Events() {
		off := e.At.Sub(r.start).Seconds()
		switch e.Kind {
		case KindStateChange:
			fmt.Fprintf(&b, "%10.3f  %-22s\n", off, "-> "+e.State.String())
		case KindPacket:
			fmt.Fprintf(&b, "%10.3f  %-22s %d bytes\n", off, e.Label, e.Bytes)
		}
	}
	return b.String()
}
