package sim

import (
	"testing"
	"time"

	"senseaid/internal/core"
	"senseaid/internal/geo"
	"senseaid/internal/mobility"
	"senseaid/internal/simclock"
)

// TestLowBatteryDeviceNeverSelected injects a device below its critical
// battery level and verifies the selector's hard cutoff excludes it.
func TestLowBatteryDeviceNeverSelected(t *testing.T) {
	// Three devices pinned inside the region; one at 10% battery
	// (critical level is 20%).
	mob := map[int]mobility.Model{}
	for i := 0; i < 3; i++ {
		mob[i] = mobility.Stationary{P: geo.Offset(geo.CSDepartment, float64(i*50), 0)}
	}
	w, err := NewWorld(WorldConfig{
		NumDevices: 3,
		Seed:       9,
		Mobility:   mob,
		BatteryPct: map[int]float64{0: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	lowID := w.Phones[0].ID()

	task := studyTask(1000, 10*time.Minute, 2, 90*time.Minute)
	task.Area.Center = geo.CSDepartment
	res, err := SenseAid{}.Run(w, []core.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range res.Selections {
		for _, id := range sel.Devices {
			if id == lowID {
				t.Fatalf("device at 10%% battery selected in %s", sel.Request)
			}
		}
	}
	if res.Readings == 0 {
		t.Fatal("healthy devices produced no readings")
	}
}

// TestWaitlistRecoversWhenDevicesArrive starts with too few devices in
// the region; a scripted device walks in mid-test and the waitlisted
// requests recover.
func TestWaitlistRecoversWhenDevicesArrive(t *testing.T) {
	far := geo.Offset(geo.CSDepartment, 5000, 0)
	mob := map[int]mobility.Model{
		0: mobility.Stationary{P: geo.CSDepartment},
		// Device 1 arrives 25 minutes in.
		1: mobility.NewScripted([]mobility.Keyframe{
			{At: simclock.Epoch, P: far},
			{At: simclock.Epoch.Add(25 * time.Minute), P: geo.Offset(geo.CSDepartment, 80, 0)},
		}),
	}
	w, err := NewWorld(WorldConfig{NumDevices: 2, Seed: 10, Mobility: mob})
	if err != nil {
		t.Fatal(err)
	}
	task := studyTask(500, 10*time.Minute, 2, 90*time.Minute)
	task.Area.Center = geo.CSDepartment
	res, err := SenseAid{}.Run(w, []core.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	// Early rounds (density 2, one device present) cannot be satisfied;
	// later rounds must be.
	if len(res.Selections) == 0 {
		t.Fatal("no rounds ever satisfied after the second device arrived")
	}
	first := res.Selections[0]
	if first.At.Before(simclock.Epoch.Add(25 * time.Minute)) {
		t.Fatalf("round satisfied at %v, before the second device arrived", first.At)
	}
	for _, sel := range res.Selections {
		if len(sel.Devices) != 2 {
			t.Fatalf("selection %s has %d devices, want 2", sel.Request, len(sel.Devices))
		}
	}
}

// TestDeviceLeavingRegionStopsBeingSelected pins one device in-region and
// scripts another to leave halfway; after leaving it must not be picked.
func TestDeviceLeavingRegionStopsBeingSelected(t *testing.T) {
	away := geo.Offset(geo.CSDepartment, 5000, 0)
	mob := map[int]mobility.Model{
		0: mobility.Stationary{P: geo.CSDepartment},
		1: mobility.NewScripted([]mobility.Keyframe{
			{At: simclock.Epoch, P: geo.Offset(geo.CSDepartment, 60, 0)},
			{At: simclock.Epoch.Add(45 * time.Minute), P: away},
		}),
		2: mobility.Stationary{P: geo.Offset(geo.CSDepartment, -70, 30)},
	}
	w, err := NewWorld(WorldConfig{NumDevices: 3, Seed: 11, Mobility: mob})
	if err != nil {
		t.Fatal(err)
	}
	leaverID := w.Phones[1].ID()

	task := studyTask(500, 10*time.Minute, 2, 90*time.Minute)
	task.Area.Center = geo.CSDepartment
	res, err := SenseAid{}.Run(w, []core.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	cutoff := simclock.Epoch.Add(45 * time.Minute)
	for _, sel := range res.Selections {
		if !sel.At.After(cutoff) {
			continue
		}
		for _, id := range sel.Devices {
			if id == leaverID {
				t.Fatalf("departed device selected at %v", sel.At)
			}
		}
	}
}

// TestQuietDevicesStillDeliverViaForcedUploads removes almost all organic
// traffic: Sense-Aid must fall back to deadline promotions rather than
// lose data.
func TestQuietDevicesStillDeliverViaForcedUploads(t *testing.T) {
	w, err := NewWorld(WorldConfig{NumDevices: 6, Seed: 12, Quiet: true, SessionGap: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	task := studyTask(1000, 10*time.Minute, 2, 90*time.Minute)
	res, err := SenseAid{}.Run(w, []core.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	if res.Readings == 0 {
		t.Fatal("quiet cohort delivered nothing")
	}
	if res.Uploads.Forced == 0 {
		t.Fatal("no forced uploads despite 2-hour traffic gaps")
	}
	// With almost no tails available, forced must dominate.
	if res.Uploads.Forced <= res.Uploads.Piggybacked {
		t.Fatalf("forced=%d piggybacked=%d on a silent cohort", res.Uploads.Forced, res.Uploads.Piggybacked)
	}
}

// TestSelectAllStillCheaperThanPCS reproduces the paper's section 5.2
// observation as a test: even tasking every qualified device, Sense-Aid's
// tail-riding uploads beat PCS.
func TestSelectAllStillCheaperThanPCS(t *testing.T) {
	task := studyTask(1000, 10*time.Minute, 2, 90*time.Minute)

	w1, err := NewWorld(WorldConfig{NumDevices: 20, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	selectAll, err := SenseAid{Server: core.ServerConfig{SelectAll: true}}.Run(w1, []core.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewWorld(WorldConfig{NumDevices: 20, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	pcs, err := PCS{Seed: 13}.Run(w2, []core.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	if selectAll.AvgSelected <= 2 {
		t.Fatalf("select-all tasked %.1f devices/round; orchestration still on?", selectAll.AvgSelected)
	}
	saving := 1 - selectAll.TotalCrowdJ/pcs.TotalCrowdJ
	if saving < 0.3 {
		t.Fatalf("select-all saving over PCS = %.0f%%, paper reports 54.5%%", saving*100)
	}
}
