package cellnet

import (
	"fmt"
	"testing"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/mobility"
	"senseaid/internal/phone"
	"senseaid/internal/radio"
	"senseaid/internal/simclock"
)

func newPhoneAt(t *testing.T, s *simclock.Scheduler, id string, p geo.Point) *phone.Phone {
	t.Helper()
	ph, err := phone.New(s, phone.Config{ID: id, Mobility: mobility.Stationary{P: p}})
	if err != nil {
		t.Fatalf("phone.New: %v", err)
	}
	return ph
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty tower list accepted")
	}
	if _, err := New([]Tower{{ID: "", Location: geo.CSDepartment, RangeM: 100}}); err == nil {
		t.Fatal("empty tower ID accepted")
	}
	if _, err := New([]Tower{
		{ID: "a", Location: geo.CSDepartment, RangeM: 100},
		{ID: "a", Location: geo.EEDepartment, RangeM: 100},
	}); err == nil {
		t.Fatal("duplicate tower ID accepted")
	}
	if _, err := New([]Tower{{ID: "a", Location: geo.CSDepartment, RangeM: 0}}); err == nil {
		t.Fatal("zero range accepted")
	}
}

func TestAttachDetach(t *testing.T) {
	s := simclock.NewScheduler()
	n := CampusNetwork()
	p := newPhoneAt(t, s, "d1", geo.CSDepartment)
	if err := n.Attach(p); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := n.Attach(p); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	if err := n.Attach(nil); err == nil {
		t.Fatal("nil attach accepted")
	}
	if got, ok := n.Device("d1"); !ok || got != p {
		t.Fatal("Device lookup failed")
	}
	n.Detach("d1")
	if _, ok := n.Device("d1"); ok {
		t.Fatal("device still present after detach")
	}
	n.Detach("missing") // must not panic
}

func TestTowerForNearest(t *testing.T) {
	s := simclock.NewScheduler()
	n := CampusNetwork()
	p := newPhoneAt(t, s, "d1", geo.CSDepartment)
	if err := n.Attach(p); err != nil {
		t.Fatal(err)
	}
	tower, ok := n.TowerFor("d1")
	if !ok {
		t.Fatal("device at CS dept out of coverage")
	}
	// The CS-department tower is enodeb-3 (third campus location).
	if tower.ID != "enodeb-3" {
		t.Fatalf("serving tower = %s, want enodeb-3", tower.ID)
	}
	loc, ok := n.CoarseLocation("d1")
	if !ok || loc != geo.CSDepartment {
		t.Fatalf("coarse location = %v, want CS dept tower location", loc)
	}
}

func TestOutOfCoverage(t *testing.T) {
	s := simclock.NewScheduler()
	n := CampusNetwork()
	far := geo.Offset(geo.CampusCenter(), 50_000, 0)
	p := newPhoneAt(t, s, "remote", far)
	if err := n.Attach(p); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.TowerFor("remote"); ok {
		t.Fatal("device 50km away should be out of coverage")
	}
	if devs := n.DevicesInRegion(geo.Circle{Center: far, RadiusM: 100}); len(devs) != 0 {
		t.Fatal("out-of-coverage device should not qualify for regions")
	}
}

func TestRadioStateVisible(t *testing.T) {
	s := simclock.NewScheduler()
	n := CampusNetwork()
	p := newPhoneAt(t, s, "d1", geo.CSDepartment)
	if err := n.Attach(p); err != nil {
		t.Fatal(err)
	}
	st, ok := n.RadioState("d1")
	if !ok || st != radio.StateIdle {
		t.Fatalf("initial radio state = %v, want idle", st)
	}
	p.Radio().Send(600, radio.CauseBackground, true)
	s.RunFor(2 * time.Second)
	st, _ = n.RadioState("d1")
	if st != radio.StateTail {
		t.Fatalf("radio state after send = %v, want tail", st)
	}
	if _, ok := n.RadioState("ghost"); ok {
		t.Fatal("unknown device reported a radio state")
	}
}

func TestDevicesInRegionSortedAndFiltered(t *testing.T) {
	s := simclock.NewScheduler()
	n := CampusNetwork()
	inA := newPhoneAt(t, s, "b-in", geo.Offset(geo.CSDepartment, 100, 0))
	inB := newPhoneAt(t, s, "a-in", geo.Offset(geo.CSDepartment, -100, 50))
	out := newPhoneAt(t, s, "c-out", geo.Offset(geo.CSDepartment, 900, 0))
	for _, p := range []*phone.Phone{inA, inB, out} {
		if err := n.Attach(p); err != nil {
			t.Fatal(err)
		}
	}
	got := n.DevicesInRegion(geo.Circle{Center: geo.CSDepartment, RadiusM: 500})
	if len(got) != 2 {
		t.Fatalf("qualified = %d, want 2", len(got))
	}
	if got[0].ID() != "a-in" || got[1].ID() != "b-in" {
		t.Fatalf("region result not sorted by ID: %s, %s", got[0].ID(), got[1].ID())
	}
}

func TestDevicesViaTowersCoarser(t *testing.T) {
	s := simclock.NewScheduler()
	n := CampusNetwork()
	// 900m from CS dept: outside a 500m task circle, but served by a
	// tower whose coverage intersects it.
	p := newPhoneAt(t, s, "edge", geo.Offset(geo.CSDepartment, 900, 0))
	if err := n.Attach(p); err != nil {
		t.Fatal(err)
	}
	c := geo.Circle{Center: geo.CSDepartment, RadiusM: 500}
	if got := n.DevicesInRegion(c); len(got) != 0 {
		t.Fatal("exact region check should exclude the edge device")
	}
	if got := n.DevicesViaTowers(c); len(got) != 1 {
		t.Fatal("tower-granularity check should include the edge device")
	}
}

func TestCorePathSwitching(t *testing.T) {
	n := CampusNetwork()
	if got := n.PathFor("enodeb-1"); got != PathDirect {
		t.Fatalf("default path = %v, want direct", got)
	}
	n.SetCrowdsensing("enodeb-1", true)
	if got := n.PathFor("enodeb-1"); got != PathSenseAid {
		t.Fatalf("crowdsensing path = %v, want sense-aid", got)
	}
	// Fail-safe: server down forces the direct path.
	n.SetServerUp(false)
	if got := n.PathFor("enodeb-1"); got != PathDirect {
		t.Fatalf("failover path = %v, want direct", got)
	}
	n.SetServerUp(true)
	n.SetCrowdsensing("enodeb-1", false)
	if got := n.PathFor("enodeb-1"); got != PathDirect {
		t.Fatalf("cleared path = %v, want direct", got)
	}
}

func TestCorePathString(t *testing.T) {
	if PathDirect.String() != "path1(direct)" || PathSenseAid.String() != "path2(sense-aid)" {
		t.Fatal("unexpected path names")
	}
}

func TestDevicesOrderStable(t *testing.T) {
	s := simclock.NewScheduler()
	n := CampusNetwork()
	for i := 0; i < 5; i++ {
		p := newPhoneAt(t, s, fmt.Sprintf("dev-%d", i), geo.CSDepartment)
		if err := n.Attach(p); err != nil {
			t.Fatal(err)
		}
	}
	devs := n.Devices()
	if len(devs) != 5 {
		t.Fatalf("got %d devices, want 5", len(devs))
	}
	for i, p := range devs {
		if want := fmt.Sprintf("dev-%d", i); p.ID() != want {
			t.Fatalf("device %d = %s, want %s (attachment order)", i, p.ID(), want)
		}
	}
}

func TestTowersInRegion(t *testing.T) {
	n := CampusNetwork()
	all := n.TowersInRegion(geo.Circle{Center: geo.CampusCenter(), RadiusM: 1000})
	if len(all) != 4 {
		t.Fatalf("campus-wide region hits %d towers, want 4", len(all))
	}
	none := n.TowersInRegion(geo.Circle{Center: geo.Offset(geo.CampusCenter(), 100_000, 0), RadiusM: 100})
	if len(none) != 0 {
		t.Fatalf("far region hits %d towers, want 0", len(none))
	}
}
