package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", Labels{"path": "tail"})
	b := r.Counter("x_total", "x", Labels{"path": "tail"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("x_total", "x", Labels{"path": "promoted"})
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	a.Inc()
	a.Add(2)
	if got := b.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if got := c.Value(); got != 0 {
		t.Fatalf("sibling series moved: %d", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth", nil)
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.GaugeFunc("live", "live value", nil, func() float64 { return v })
	snap := r.Snapshot()
	if len(snap) != 1 || *snap[0].Series[0].Value != 7 {
		t.Fatalf("snapshot = %+v", snap)
	}
	v = 9
	if *r.Snapshot()[0].Series[0].Value != 9 {
		t.Fatal("GaugeFunc not re-evaluated")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1}, nil)
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() < 5.6 || h.Sum() > 5.61 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// Cumulative buckets: le=0.01 -> 1, le=0.1 -> 3, le=1 -> 4, +Inf -> 5.
	snap := r.Snapshot()[0].Series[0]
	want := map[string]uint64{"0.01": 1, "0.1": 3, "1": 4, "+Inf": 5}
	for k, n := range want {
		if snap.Buckets[k] != n {
			t.Fatalf("bucket %s = %d, want %d (all: %v)", k, snap.Buckets[k], n, snap.Buckets)
		}
	}
	h.ObserveDuration(30 * time.Millisecond)
	if h.Count() != 6 {
		t.Fatal("ObserveDuration did not count")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "m", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "m", nil)
}

func TestLabelKeyMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "m", Labels{"path": "tail"})
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting label keys did not panic")
		}
	}()
	r.Counter("m", "m", Labels{"role": "device"})
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name accepted")
		}
	}()
	r.Counter("9bad-name", "", nil)
}

// TestConcurrentHotPath hammers one registry from many goroutines; run
// under -race (ci.sh) this is the registry's thread-safety regression.
func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, iters = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hot_total", "hot", nil)
			g := r.Gauge("hot_gauge", "hot", nil)
			h := r.Histogram("hot_seconds", "hot", DefBuckets, nil)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.02)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hot_total", "hot", nil).Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("hot_gauge", "hot", nil).Value(); got != workers*iters {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
	if got := r.Histogram("hot_seconds", "hot", DefBuckets, nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestHotPathAllocationFree is the satellite requirement's hard check:
// counter increments must not allocate.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "", nil)
	g := r.Gauge("alloc_gauge", "", nil)
	h := r.Histogram("alloc_seconds", "", DefBuckets, nil)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.03) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op", n)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.001, 10, 3)
	want := []float64{0.001, 0.01, 0.1}
	for i := range want {
		if got[i] < want[i]*0.999 || got[i] > want[i]*1.001 {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}
