package traffic

import (
	"testing"
	"testing/quick"
	"time"

	"senseaid/internal/simclock"
)

func TestGeneratorEmitsSessions(t *testing.T) {
	s := simclock.NewScheduler()
	g := NewGenerator(s, DefaultConfig(1))
	var transfers []Transfer
	g.OnTransfer(func(tr Transfer) { transfers = append(transfers, tr) })
	g.Start(s.Now().Add(2 * time.Hour))
	s.Drain()

	if g.Sessions() == 0 {
		t.Fatal("no sessions over 2 hours of default usage")
	}
	// 5-minute mean gap: expect on the order of 24 sessions, certainly
	// between 5 and 80.
	if g.Sessions() < 5 || g.Sessions() > 80 {
		t.Fatalf("sessions = %d over 2h, expected 5..80", g.Sessions())
	}
	if len(transfers) < g.Sessions() {
		t.Fatalf("transfers (%d) fewer than sessions (%d)", len(transfers), g.Sessions())
	}
	if g.Transfers() != len(transfers) {
		t.Fatalf("Transfers() = %d, sink saw %d", g.Transfers(), len(transfers))
	}
}

func TestTransfersWellFormed(t *testing.T) {
	s := simclock.NewScheduler()
	g := NewGenerator(s, DefaultConfig(2))
	end := s.Now().Add(time.Hour)
	var prev time.Time
	sawUp, sawDown, sawStart := false, false, false
	g.OnTransfer(func(tr Transfer) {
		if tr.Bytes < 200 {
			t.Errorf("transfer of %d bytes, want >= 200", tr.Bytes)
		}
		if tr.At.Before(prev) {
			t.Error("transfers delivered out of order")
		}
		if tr.At.After(end) {
			t.Errorf("transfer at %v after end %v", tr.At, end)
		}
		prev = tr.At
		if tr.Uplink {
			sawUp = true
		} else {
			sawDown = true
		}
		if tr.SessionStart {
			sawStart = true
		}
	})
	g.Start(end)
	s.Drain()
	if !sawUp || !sawDown {
		t.Fatalf("traffic mix missing a direction: up=%v down=%v", sawUp, sawDown)
	}
	if !sawStart {
		t.Fatal("no transfer marked as session start")
	}
}

func TestSessionStartsMatchSessions(t *testing.T) {
	s := simclock.NewScheduler()
	g := NewGenerator(s, DefaultConfig(3))
	starts := 0
	g.OnTransfer(func(tr Transfer) {
		if tr.SessionStart {
			starts++
		}
	})
	g.Start(s.Now().Add(3 * time.Hour))
	s.Drain()
	if starts != g.Sessions() {
		t.Fatalf("session-start transfers = %d, sessions = %d", starts, g.Sessions())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Transfer {
		s := simclock.NewScheduler()
		g := NewGenerator(s, DefaultConfig(42))
		var out []Transfer
		g.OnTransfer(func(tr Transfer) { out = append(out, tr) })
		g.Start(s.Now().Add(time.Hour))
		s.Drain()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transfer %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestQuietConfigIsQuieter(t *testing.T) {
	count := func(cfg Config) int {
		s := simclock.NewScheduler()
		g := NewGenerator(s, cfg)
		g.Start(s.Now().Add(4 * time.Hour))
		s.Drain()
		return g.Transfers()
	}
	if q, d := count(QuietConfig(5)), count(DefaultConfig(5)); q >= d {
		t.Fatalf("quiet profile (%d transfers) not quieter than default (%d)", q, d)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	s := simclock.NewScheduler()
	g := NewGenerator(s, Config{Seed: 9}) // all zero fields
	g.Start(s.Now().Add(time.Hour))
	s.Drain()
	if g.Sessions() == 0 {
		t.Fatal("zero-valued config should still produce sessions via defaults")
	}
}

// Property: over any horizon, the session count scales with the horizon
// (never decreases) and transfers >= sessions.
func TestGeneratorMonotoneProperty(t *testing.T) {
	f := func(hours uint8) bool {
		h := int(hours%6) + 1
		s := simclock.NewScheduler()
		g := NewGenerator(s, DefaultConfig(77))
		g.Start(s.Now().Add(time.Duration(h) * time.Hour))
		s.Drain()
		return g.Transfers() >= g.Sessions()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
