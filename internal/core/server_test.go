package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/sensors"
	"senseaid/internal/simclock"
)

// recordingDispatcher captures dispatches for assertions. A sharded
// server dispatches from concurrent per-shard goroutines, so appends
// are locked; tests may read calls directly after ProcessDue returns
// (the fan-out joins before returning).
type recordingDispatcher struct {
	mu    sync.Mutex
	calls []struct {
		req Request
		dev DeviceState
	}
}

func (r *recordingDispatcher) Dispatch(req Request, dev DeviceState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls = append(r.calls, struct {
		req Request
		dev DeviceState
	}{req, dev})
}

func newTestServer(t *testing.T) (*Server, *recordingDispatcher) {
	t.Helper()
	d := &recordingDispatcher{}
	s, err := NewServer(DefaultServerConfig(), d)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s, d
}

func registerFresh(t *testing.T, s *Server, ids ...string) {
	t.Helper()
	for _, id := range ids {
		if err := s.Devices().Register(freshDevice(id)); err != nil {
			t.Fatalf("Register(%s): %v", id, err)
		}
	}
}

func submitValid(t *testing.T, s *Server, density int, sink DataSink) TaskID {
	t.Helper()
	tk := validTask()
	tk.SpatialDensity = density
	if sink == nil {
		sink = func(TaskID, string, sensors.Reading) {}
	}
	id, err := s.SubmitTask(tk, simclock.Epoch, sink)
	if err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	return id
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(DefaultServerConfig(), nil); err == nil {
		t.Fatal("nil dispatcher accepted")
	}
	bad := DefaultServerConfig()
	bad.Selector.MaxUses = 0
	if _, err := NewServer(bad, &recordingDispatcher{}); err == nil {
		t.Fatal("invalid selector config accepted")
	}
}

func TestSubmitTaskGeneratesRequests(t *testing.T) {
	s, _ := newTestServer(t)
	id := submitValid(t, s, 2, nil)
	if !strings.HasPrefix(string(id), "task-") {
		t.Fatalf("task ID = %q", id)
	}
	st := s.Stats()
	if st.TasksSubmitted != 1 || st.RequestsGenerated != 6 {
		t.Fatalf("stats = %+v, want 1 task / 6 requests", st)
	}
	if _, ok := s.Task(id); !ok {
		t.Fatal("task not stored")
	}
	if next, ok := s.NextWake(); !ok || !next.Equal(simclock.Epoch) {
		t.Fatalf("NextWake = %v, want task start", next)
	}
}

func TestSubmitTaskRejectsInvalid(t *testing.T) {
	s, _ := newTestServer(t)
	tk := validTask()
	tk.SpatialDensity = 0
	if _, err := s.SubmitTask(tk, simclock.Epoch, func(TaskID, string, sensors.Reading) {}); err == nil {
		t.Fatal("invalid task accepted")
	}
	if _, err := s.SubmitTask(validTask(), simclock.Epoch, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}

func TestProcessDueDispatchesDensityDevices(t *testing.T) {
	s, d := newTestServer(t)
	registerFresh(t, s, "a", "b", "c", "d")
	submitValid(t, s, 2, nil)

	s.ProcessDue(simclock.Epoch)
	if len(d.calls) != 2 {
		t.Fatalf("dispatched to %d devices, want 2 (spatial density)", len(d.calls))
	}
	if s.Stats().RequestsSatisfied != 1 {
		t.Fatalf("satisfied = %d, want 1", s.Stats().RequestsSatisfied)
	}
	// Selection log records the round.
	sels := s.Selections()
	if len(sels) != 1 || len(sels[0].Devices) != 2 {
		t.Fatalf("selection log = %+v", sels)
	}
	// Fairness counters moved.
	for _, c := range d.calls {
		got, _ := s.Devices().Get(c.dev.ID)
		if got.TimesUsed != 1 {
			t.Fatalf("device %s TimesUsed = %d, want 1", c.dev.ID, got.TimesUsed)
		}
	}
}

func TestProcessDueRespectsDueTime(t *testing.T) {
	s, d := newTestServer(t)
	registerFresh(t, s, "a", "b")
	submitValid(t, s, 1, nil)

	s.ProcessDue(simclock.Epoch.Add(-time.Second))
	if len(d.calls) != 0 {
		t.Fatal("dispatched before due time")
	}
	s.ProcessDue(simclock.Epoch)
	if len(d.calls) != 1 {
		t.Fatalf("dispatched %d, want 1", len(d.calls))
	}
	// The remaining 5 requests stay queued.
	if next, ok := s.NextWake(); !ok || !next.Equal(simclock.Epoch.Add(10*time.Minute)) {
		t.Fatalf("NextWake = %v, want +10min", next)
	}
}

func TestUnsatisfiableGoesToWaitQueueThenRecovers(t *testing.T) {
	s, d := newTestServer(t)
	registerFresh(t, s, "only")
	submitValid(t, s, 2, nil) // needs 2, have 1

	s.ProcessDue(simclock.Epoch)
	if len(d.calls) != 0 {
		t.Fatal("dispatched an unsatisfiable request")
	}
	if s.Stats().RequestsWaitlisted != 1 {
		t.Fatalf("waitlisted = %d, want 1", s.Stats().RequestsWaitlisted)
	}

	// A second device appears before the deadline: the wait check must
	// rescue the request.
	registerFresh(t, s, "second")
	s.ProcessDue(simclock.Epoch.Add(time.Minute))
	if len(d.calls) != 2 {
		t.Fatalf("dispatched %d after recovery, want 2", len(d.calls))
	}
	if st := s.Stats(); st.RequestsSatisfied != 1 || st.RequestsWaitlisted != 0 {
		t.Fatalf("stats after recovery = %+v", st)
	}
}

func TestWaitlistedRequestExpires(t *testing.T) {
	s, _ := newTestServer(t)
	registerFresh(t, s, "only")
	submitValid(t, s, 2, nil)

	s.ProcessDue(simclock.Epoch)
	// Past the first request's deadline (due + period = 10 min).
	s.ProcessDue(simclock.Epoch.Add(11 * time.Minute))
	if s.Stats().RequestsExpired == 0 {
		t.Fatal("stale waitlisted request never expired")
	}
}

func TestReceiveDataFlowsToSink(t *testing.T) {
	s, d := newTestServer(t)
	registerFresh(t, s, "a", "b")
	var got []string
	id := submitValid(t, s, 1, func(task TaskID, dev string, r sensors.Reading) {
		got = append(got, dev)
	})
	s.ProcessDue(simclock.Epoch)
	req := d.calls[0].req
	dev := d.calls[0].dev

	reading := sensors.Reading{
		Sensor: sensors.Barometer, Value: 1013, Unit: "hPa",
		At: simclock.Epoch.Add(time.Second), Where: geo.CSDepartment,
	}
	if err := s.ReceiveData(req.ID(), dev.ID, reading, reading.At); err != nil {
		t.Fatalf("ReceiveData: %v", err)
	}
	if len(got) != 1 || got[0] != dev.ID {
		t.Fatalf("sink saw %v, want [%s]", got, dev.ID)
	}
	if s.Stats().ReadingsAccepted != 1 {
		t.Fatalf("accepted = %d, want 1", s.Stats().ReadingsAccepted)
	}
	_ = id
}

// TestAggTapSeesAcceptedReadings pins the live-aggregation tap contract:
// every accepted upload reaches the tap (with the shard's region), rejected
// uploads never do, and the tap fires before the task's own sink.
func TestAggTapSeesAcceptedReadings(t *testing.T) {
	type tapped struct {
		task   TaskID
		region string
		dev    string
		value  float64
	}
	var taps []tapped
	var sinkSeen int
	cfg := DefaultServerConfig()
	cfg.TraceRegion = "west"
	cfg.AggTap = func(task TaskID, region string, deviceID string, r sensors.Reading) {
		if sinkSeen != 0 {
			t.Error("sink ran before the agg tap")
		}
		taps = append(taps, tapped{task, region, deviceID, r.Value})
	}
	d := &recordingDispatcher{}
	s, err := NewServer(cfg, d)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	registerFresh(t, s, "a", "b")
	id := submitValid(t, s, 1, func(TaskID, string, sensors.Reading) { sinkSeen++ })
	s.ProcessDue(simclock.Epoch)
	req := d.calls[0].req
	dev := d.calls[0].dev

	reading := sensors.Reading{
		Sensor: sensors.Barometer, Value: 1013, Unit: "hPa",
		At: simclock.Epoch.Add(time.Second), Where: geo.CSDepartment,
	}
	if err := s.ReceiveData(req.ID(), dev.ID, reading, reading.At); err != nil {
		t.Fatalf("ReceiveData: %v", err)
	}
	if len(taps) != 1 {
		t.Fatalf("tap saw %d readings, want 1", len(taps))
	}
	if got := taps[0]; got.task != id || got.region != "west" || got.dev != dev.ID || got.value != 1013 {
		t.Fatalf("tap saw %+v", got)
	}
	if sinkSeen != 1 {
		t.Fatalf("sink ran %d times, want 1", sinkSeen)
	}

	// A rejected upload (wrong sensor) must not reach the tap.
	bad := reading
	bad.Sensor = sensors.Gyroscope
	if s.ReceiveData(req.ID(), dev.ID, bad, bad.At) == nil {
		t.Fatal("wrong-sensor data accepted")
	}
	if len(taps) != 1 {
		t.Fatalf("tap saw rejected reading: %+v", taps)
	}
}

func TestReceiveDataRejections(t *testing.T) {
	s, d := newTestServer(t)
	registerFresh(t, s, "a", "b")
	submitValid(t, s, 1, nil)
	s.ProcessDue(simclock.Epoch)
	req := d.calls[0].req
	dev := d.calls[0].dev
	at := simclock.Epoch.Add(time.Second)

	// Unsolicited device.
	other := "b"
	if dev.ID == "b" {
		other = "a"
	}
	reading := sensors.Reading{Sensor: sensors.Barometer, At: at, Where: geo.CSDepartment}
	if err := s.ReceiveData(req.ID(), other, reading, at); err == nil {
		t.Fatal("unsolicited data accepted")
	}

	// Wrong sensor.
	bad := reading
	bad.Sensor = sensors.Gyroscope
	if err := s.ReceiveData(req.ID(), dev.ID, bad, at); err == nil {
		t.Fatal("wrong-sensor data accepted")
	}

	// Outside region (ValidateRegion on by default).
	bad = reading
	bad.Where = geo.Offset(geo.CSDepartment, 5000, 0)
	if err := s.ReceiveData(req.ID(), dev.ID, bad, at); err == nil {
		t.Fatal("out-of-region data accepted")
	}

	// Stale reading.
	bad = reading
	bad.At = simclock.Epoch.Add(-time.Hour)
	if err := s.ReceiveData(req.ID(), dev.ID, bad, at); err == nil {
		t.Fatal("stale data accepted")
	}

	if s.Stats().ReadingsRejected != 4 {
		t.Fatalf("rejected = %d, want 4", s.Stats().ReadingsRejected)
	}

	// The request is still pending, so valid data is still accepted.
	if err := s.ReceiveData(req.ID(), dev.ID, reading, at); err != nil {
		t.Fatalf("valid data after rejections: %v", err)
	}
}

func TestMissedDispatchMarksUnresponsive(t *testing.T) {
	s, d := newTestServer(t)
	registerFresh(t, s, "a", "b")
	submitValid(t, s, 1, nil)
	s.ProcessDue(simclock.Epoch)
	missed := d.calls[0].dev.ID

	// Let the deadline pass without data.
	s.ProcessDue(simclock.Epoch.Add(11 * time.Minute))
	got, _ := s.Devices().Get(missed)
	if got.Responsive {
		t.Fatal("device that missed its upload still responsive")
	}
	if s.Stats().DispatchesMissed != 1 {
		t.Fatalf("missed = %d, want 1", s.Stats().DispatchesMissed)
	}

	// Next round must pick the other device.
	if len(d.calls) < 2 {
		t.Fatalf("second round never dispatched; calls = %d", len(d.calls))
	}
	for _, c := range d.calls[1:] {
		if c.dev.ID == missed {
			t.Fatal("unresponsive device selected again")
		}
	}
}

func TestDeleteTaskDropsRequests(t *testing.T) {
	s, d := newTestServer(t)
	registerFresh(t, s, "a")
	id := submitValid(t, s, 1, nil)
	if err := s.DeleteTask(id); err != nil {
		t.Fatalf("DeleteTask: %v", err)
	}
	if err := s.DeleteTask(id); err == nil {
		t.Fatal("double delete accepted")
	}
	s.ProcessDue(simclock.Epoch.Add(time.Hour))
	if len(d.calls) != 0 {
		t.Fatal("deleted task still dispatched")
	}
	if _, ok := s.NextWake(); ok {
		t.Fatal("deleted task still queued")
	}
}

func TestUpdateTaskParams(t *testing.T) {
	s, d := newTestServer(t)
	registerFresh(t, s, "a", "b", "c")
	id := submitValid(t, s, 1, nil)

	// Raise the density mid-flight.
	err := s.UpdateTaskParams(id, simclock.Epoch, func(tk *Task) {
		tk.SpatialDensity = 3
	})
	if err != nil {
		t.Fatalf("UpdateTaskParams: %v", err)
	}
	s.ProcessDue(simclock.Epoch)
	if len(d.calls) != 3 {
		t.Fatalf("dispatched %d after update, want 3", len(d.calls))
	}

	if err := s.UpdateTaskParams("task-404", simclock.Epoch, func(*Task) {}); err == nil {
		t.Fatal("update of unknown task accepted")
	}
	if err := s.UpdateTaskParams(id, simclock.Epoch, func(tk *Task) { tk.SpatialDensity = 0 }); err == nil {
		t.Fatal("invalid update accepted")
	}
}

func TestDeviceStoreBasics(t *testing.T) {
	st := NewDeviceStore()
	if err := st.Register(DeviceState{}); err == nil {
		t.Fatal("empty ID registered")
	}
	bad := freshDevice("x")
	bad.Budget.CriticalBatteryPct = 200
	if err := st.Register(bad); err == nil {
		t.Fatal("invalid budget registered")
	}

	if err := st.Register(freshDevice("b")); err != nil {
		t.Fatal(err)
	}
	if err := st.Register(freshDevice("a")); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	all := st.All()
	if all[0].ID != "a" || all[1].ID != "b" {
		t.Fatal("All() not sorted by ID")
	}

	if err := st.UpdateState("a", geo.EEDepartment, 73, simclock.Epoch.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	got, _ := st.Get("a")
	if got.BatteryPct != 73 || got.Position != geo.EEDepartment {
		t.Fatalf("update not applied: %+v", got)
	}
	if err := st.UpdateState("ghost", geo.EEDepartment, 50, simclock.Epoch); err == nil {
		t.Fatal("update of unknown device accepted")
	}

	st.NoteSelected("a")
	st.NoteEnergy("a", 12.5)
	st.NoteEnergy("a", -3) // ignored
	got, _ = st.Get("a")
	if got.TimesUsed != 1 || got.EnergySpentJ != 12.5 {
		t.Fatalf("counters = %+v", got)
	}

	st.ResetWindow()
	got, _ = st.Get("a")
	if got.TimesUsed != 0 || got.EnergySpentJ != 0 {
		t.Fatal("ResetWindow did not clear counters")
	}

	st.Deregister("a")
	if _, ok := st.Get("a"); ok {
		t.Fatal("deregistered device still present")
	}
}

func TestQueueOrdering(t *testing.T) {
	var q requestQueue
	tk := validTask()
	tk.ID = "t1"
	reqs, err := tk.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Push in reverse.
	for i := len(reqs) - 1; i >= 0; i-- {
		q.push(reqs[i])
	}
	for i := range reqs {
		got := q.pop()
		if got.Seq != i {
			t.Fatalf("pop %d returned seq %d", i, got.Seq)
		}
	}
	if _, ok := q.peek(); ok {
		t.Fatal("drained queue still peeks")
	}
}

func TestQueueRemoveTask(t *testing.T) {
	var q requestQueue
	t1, t2 := validTask(), validTask()
	t1.ID, t2.ID = "t1", "t2"
	r1, err := t1.Expand()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := t2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range append(r1, r2...) {
		q.push(r)
	}
	if removed := q.removeTask("t1"); removed != len(r1) {
		t.Fatalf("removed %d, want %d", removed, len(r1))
	}
	for q.Len() > 0 {
		if r := q.pop(); r.Task.ID != "t2" {
			t.Fatalf("t1 request survived removal: %s", r.ID())
		}
	}
}

func TestFairnessWindowResets(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.FairnessWindow = time.Hour
	d := &recordingDispatcher{}
	s, err := NewServer(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	registerFresh(t, s, "a", "b")
	s.Devices().NoteSelected("a")
	s.Devices().NoteEnergy("a", 42)

	// First ProcessDue anchors the window; counters stand.
	s.ProcessDue(simclock.Epoch)
	if got, _ := s.Devices().Get("a"); got.TimesUsed != 1 || got.EnergySpentJ != 42 {
		t.Fatalf("counters reset too early: %+v", got)
	}
	// Within the window: still standing.
	s.ProcessDue(simclock.Epoch.Add(30 * time.Minute))
	if got, _ := s.Devices().Get("a"); got.TimesUsed != 1 {
		t.Fatalf("counters reset mid-window: %+v", got)
	}
	// Past the window: reset.
	s.ProcessDue(simclock.Epoch.Add(61 * time.Minute))
	if got, _ := s.Devices().Get("a"); got.TimesUsed != 0 || got.EnergySpentJ != 0 {
		t.Fatalf("window did not reset counters: %+v", got)
	}
}
