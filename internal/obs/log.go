package obs

import (
	"fmt"
	"log"
	"sync/atomic"
)

// Level orders log verbosity: errors always print, info adds operational
// events, debug adds per-message noise.
type Level int32

// Levels, least to most verbose.
const (
	LevelError Level = iota
	LevelInfo
	LevelDebug
)

// String names the level as it appears in log lines.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	default:
		return "ERROR"
	}
}

// ParseLevel maps "error", "info", "debug" to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "error":
		return LevelError, nil
	case "info":
		return LevelInfo, nil
	case "debug":
		return LevelDebug, nil
	}
	return LevelError, fmt.Errorf("obs: unknown log level %q", s)
}

// Logger is a leveled facade over a *log.Logger. A nil *Logger is valid
// and discards everything, so components can hold one unconditionally
// ("s.log.Debugf(...)" with logging disabled costs a nil check).
type Logger struct {
	out *log.Logger
	lvl atomic.Int32
}

// NewLogger wraps out at the given level. A nil out returns a nil Logger
// (all methods become no-ops).
func NewLogger(out *log.Logger, lvl Level) *Logger {
	if out == nil {
		return nil
	}
	l := &Logger{out: out}
	l.lvl.Store(int32(lvl))
	return l
}

// SetLevel changes the verbosity at runtime.
func (l *Logger) SetLevel(lvl Level) {
	if l != nil {
		l.lvl.Store(int32(lvl))
	}
}

// Enabled reports whether messages at lvl would print.
func (l *Logger) Enabled(lvl Level) bool {
	return l != nil && Level(l.lvl.Load()) >= lvl
}

// Errorf logs at error level (always printed when a logger exists).
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }

// Infof logs operational events.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Debugf logs per-message detail.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

func (l *Logger) logf(lvl Level, format string, args ...any) {
	if !l.Enabled(lvl) {
		return
	}
	_ = l.out.Output(3, lvl.String()+" "+fmt.Sprintf(format, args...))
}
