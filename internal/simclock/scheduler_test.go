package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.ScheduleAfter(3*time.Second, func(time.Time) { got = append(got, 3) })
	s.ScheduleAfter(1*time.Second, func(time.Time) { got = append(got, 1) })
	s.ScheduleAfter(2*time.Second, func(time.Time) { got = append(got, 2) })
	s.Drain()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSchedulerTieBreakIsFIFO(t *testing.T) {
	s := NewScheduler()
	at := s.Now().Add(time.Second)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.ScheduleAt(at, func(time.Time) { got = append(got, i) })
	}
	s.Drain()
	if len(got) != 10 {
		t.Fatalf("ran %d events, want 10", len(got))
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events ran out of order: %v", got)
		}
	}
}

func TestSchedulerClockAdvances(t *testing.T) {
	s := NewScheduler()
	start := s.Now()
	var at time.Time
	s.ScheduleAfter(90*time.Minute, func(now time.Time) { at = now })
	s.Drain()
	if want := start.Add(90 * time.Minute); !at.Equal(want) {
		t.Fatalf("event ran at %v, want %v", at, want)
	}
	if !s.Now().Equal(start.Add(90 * time.Minute)) {
		t.Fatalf("clock = %v, want %v", s.Now(), start.Add(90*time.Minute))
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	e := s.ScheduleAfter(time.Second, func(time.Time) { ran = true })
	e.Cancel()
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	s.Drain()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func(now time.Time)
	tick = func(now time.Time) {
		count++
		if count < 5 {
			s.ScheduleAfter(time.Minute, tick)
		}
	}
	s.ScheduleAfter(time.Minute, tick)
	s.Drain()
	if count != 5 {
		t.Fatalf("ticks = %d, want 5", count)
	}
	if want := Epoch.Add(5 * time.Minute); !s.Now().Equal(want) {
		t.Fatalf("clock = %v, want %v", s.Now(), want)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	s := NewScheduler()
	var ran []time.Duration
	for _, d := range []time.Duration{time.Second, time.Minute, time.Hour} {
		d := d
		s.ScheduleAfter(d, func(time.Time) { ran = append(ran, d) })
	}
	s.RunUntil(Epoch.Add(2 * time.Minute))
	if len(ran) != 2 {
		t.Fatalf("ran %d events before deadline, want 2", len(ran))
	}
	if !s.Now().Equal(Epoch.Add(2 * time.Minute)) {
		t.Fatalf("clock = %v, want deadline", s.Now())
	}
	s.Drain()
	if len(ran) != 3 {
		t.Fatalf("ran %d events total, want 3", len(ran))
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.ScheduleAfter(time.Hour, func(time.Time) {})
	s.Drain()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.ScheduleAt(Epoch, func(time.Time) {})
}

func TestScheduleAfterNegativeClampsToNow(t *testing.T) {
	s := NewScheduler()
	var at time.Time
	s.ScheduleAfter(-time.Hour, func(now time.Time) { at = now })
	s.Drain()
	if !at.Equal(Epoch) {
		t.Fatalf("negative delay ran at %v, want now (%v)", at, Epoch)
	}
}

// Property: for any set of random offsets, events fire in nondecreasing
// time order and the count of fired events equals the count scheduled.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		num := int(n%64) + 1
		var fired []time.Time
		offsets := make([]time.Duration, num)
		for i := 0; i < num; i++ {
			offsets[i] = time.Duration(rng.Intn(100_000)) * time.Millisecond
			s.ScheduleAfter(offsets[i], func(now time.Time) { fired = append(fired, now) })
		}
		s.Drain()
		if len(fired) != num {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i].Before(fired[j]) }) {
			return false
		}
		// The clock must end at the max offset.
		max := offsets[0]
		for _, o := range offsets {
			if o > max {
				max = o
			}
		}
		return s.Now().Equal(Epoch.Add(max))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRealClock(t *testing.T) {
	c := RealClock{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("RealClock.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestSchedulerCounters(t *testing.T) {
	s := NewScheduler()
	if s.Len() != 0 || s.Ran() != 0 {
		t.Fatal("fresh scheduler has state")
	}
	e1 := s.ScheduleAfter(time.Second, func(time.Time) {})
	s.ScheduleAfter(2*time.Second, func(time.Time) {})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	e1.Cancel()
	s.Drain()
	if s.Ran() != 1 {
		t.Fatalf("Ran = %d, want 1 (one cancelled)", s.Ran())
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	s := NewScheduler()
	ran := false
	head := s.ScheduleAfter(time.Second, func(time.Time) { ran = true })
	s.ScheduleAfter(2*time.Second, func(time.Time) {})
	head.Cancel()
	// RunUntil must peek past the cancelled head without executing it.
	s.RunUntil(Epoch.Add(3 * time.Second))
	if ran {
		t.Fatal("cancelled head executed")
	}
	if s.Ran() != 1 {
		t.Fatalf("Ran = %d, want 1", s.Ran())
	}
}

func TestStepReturnsFalseOnlyWhenEmpty(t *testing.T) {
	s := NewScheduler()
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	s.ScheduleAfter(time.Second, func(time.Time) {})
	if !s.Step() {
		t.Fatal("Step with pending event returned false")
	}
	if s.Step() {
		t.Fatal("Step after drain returned true")
	}
}
