package core

import (
	"fmt"
	"testing"

	"senseaid/internal/geo"
	"senseaid/internal/sensors"
	"senseaid/internal/simclock"
)

// BenchmarkShardedProcessDue measures a full scheduling pass as the
// deployment gains shards. Each shard holds the same population (50
// devices, one waitlisted request that re-qualifies every pass), so
// total work grows linearly with shard count while the fan-out runs the
// shards concurrently — the paper's scalability argument for per-edge
// instances, in microbenchmark form.
func BenchmarkShardedProcessDue(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var regions []Region
			for i := 0; i < shards; i++ {
				regions = append(regions, Region{
					Name: fmt.Sprintf("r%d", i),
					Area: geo.Circle{Center: geo.Offset(geo.UniversityGym, 0, float64(i)*5000), RadiusM: 1200},
				})
			}
			s, err := NewShardedServer(DefaultServerConfig(), DispatcherFunc(func(Request, DeviceState) {}), regions)
			if err != nil {
				b.Fatal(err)
			}
			for i, r := range regions {
				for d := 0; d < 50; d++ {
					dev := freshDevice(fmt.Sprintf("dev-%d-%d", i, d))
					dev.Position = r.Area.Center
					if err := s.RegisterDevice(dev); err != nil {
						b.Fatal(err)
					}
				}
				// Density beyond the shard's population: the request
				// waitlists and every pass re-runs qualification over the
				// shard's device set without ever being satisfied.
				tk := validTask()
				tk.Area = geo.Circle{Center: r.Area.Center, RadiusM: 600}
				tk.SpatialDensity = 60
				if _, err := s.SubmitTask(tk, simclock.Epoch, func(TaskID, string, sensors.Reading) {}); err != nil {
					b.Fatal(err)
				}
			}
			s.ProcessDue(simclock.Epoch) // move due requests onto the wait queue
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ProcessDue(simclock.Epoch)
			}
		})
	}
}
