package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"senseaid/internal/core"
	"senseaid/internal/geo"
	"senseaid/internal/obs"
	"senseaid/internal/phone"
	"senseaid/internal/radio"
	"senseaid/internal/sensors"
	"senseaid/internal/simclock"
	"senseaid/internal/traffic"
)

// Variant selects between the paper's two Sense-Aid builds.
type Variant int

// Variants. Basic keeps the stock RRC behaviour: a crowdsensing upload in
// the tail resets the inactivity timer, extending the high-power window.
// Complete assumes carrier cooperation: the tail expires on its original
// schedule despite the upload.
const (
	Basic Variant = iota + 1
	Complete
)

// String names the variant as the paper does.
func (v Variant) String() string {
	if v == Complete {
		return "Sense-Aid Complete"
	}
	return "Sense-Aid Basic"
}

// SenseAid runs the full middleware: devices register with the in-network
// server, the server expands tasks and selects the minimum qualified set
// per round, and selected clients sample on schedule and upload in radio
// tail windows (falling back to a promotion just before the deadline).
type SenseAid struct {
	// Variant is Basic or Complete (zero value: Basic).
	Variant Variant
	// Server overrides the server configuration; zero value uses
	// DefaultServerConfig.
	Server core.ServerConfig
	// ControlPeriod caps how often a device's service thread reports
	// state to the server (piggybacked on tail windows). Zero: 2 min.
	ControlPeriod time.Duration
	// CountControl includes control-plane traffic in the crowdsensing
	// energy account. The paper excludes it; the ablation bench turns
	// it on.
	CountControl bool
	// Regions, when non-empty, runs the middleware sharded: one core
	// instance per geographic region (the paper's per-edge physical
	// instantiation), driven through the same core.Orchestrator interface
	// a live sharded daemon serves. Devices are homed by position and
	// re-homed as they move; tasks route to the shard covering their
	// area. Empty runs the single-region core.
	Regions []core.Region
	// OnReading, if set, observes every validated reading as it reaches
	// the application-server sink (task, device, reading). Adaptive
	// campaigns hang their controllers here.
	OnReading func(core.TaskID, string, sensors.Reading)
	// OnServer, if set, receives the in-simulation server right after
	// task submission, so callers can drive task mutations mid-run
	// (update_task_param) from simulation events. Only invoked for
	// single-region runs (Regions empty); sharded runs drive mutations
	// through the Orchestrator interface instead.
	OnServer func(*core.Server)
	// Metrics, when set, receives the run's series — both the core
	// scheduler's (via the embedded server) and senseaid_uploads_total,
	// under the same names a live deployment exposes. Nil keeps them on
	// a private registry.
	Metrics *obs.Registry
}

var _ Framework = SenseAid{}

// Name implements Framework.
func (s SenseAid) Name() string { return s.variant().String() }

func (s SenseAid) variant() Variant {
	if s.Variant == Complete {
		return Complete
	}
	return Basic
}

// controlReportBytes is the size of one service-thread state report
// (battery level, IMEI hash, budget).
const controlReportBytes = 150

// scheduleMsgBytes is the size of one server->device sensing schedule.
const scheduleMsgBytes = 200

// saPendingUpload is one sampled reading waiting for a tail window.
type saPendingUpload struct {
	req     core.Request
	reading sensors.Reading
	forced  *simclock.Event
	done    bool
}

// tailFlushDelay is how long after a tail window opens the client needs
// to notice it and serialise the upload (the paper's Figure 6 shows the
// crowdsensing packet ~1.5 s into the tail; tPacketCapture-based inference
// is not instant). It is also what separates Basic from Complete: by the
// time the upload goes out, Basic's tail reset extends the high-power
// window by this much.
const tailFlushDelay = 500 * time.Millisecond

// saClient is the Sense-Aid client middleware on one phone: it watches
// for tail windows, reports state, and uploads pending readings. It
// drives the server through the Orchestrator interface, so the same
// client logic exercises the single-region and sharded cores.
type saClient struct {
	ph           *phone.Phone
	world        *World
	server       core.Orchestrator
	resetTail    bool
	pending      []*saPendingUpload
	lastControl  time.Time
	controlGap   time.Duration
	flushPlanned bool
	res          *RunResult
	met          uploadMeter
}

// onTraffic fires on every organic transfer: the radio has just entered
// (or refreshed) its tail, the cheapest moment to talk. The client infers
// the tail from observed packets and flushes shortly after.
func (c *saClient) onTraffic(traffic.Transfer) {
	now := c.ph.Radio().LastComm()
	if len(c.pending) > 0 && !c.flushPlanned {
		c.flushPlanned = true
		c.world.Sched.ScheduleAfter(tailFlushDelay, func(time.Time) {
			c.flushPlanned = false
			c.flushPending()
		})
	}
	if now.Sub(c.lastControl) >= c.controlGap {
		c.lastControl = now
		c.ph.Radio().Send(controlReportBytes, radio.CauseControl, c.resetTail)
		c.reportState()
	}
}

// reportState delivers the device's control report to the server.
func (c *saClient) reportState() {
	_ = c.server.UpdateDeviceState(
		c.ph.ID(), c.ph.Position(), c.ph.Battery().Percent(), c.ph.Radio().LastComm())
}

// handleDispatch is the server's schedule arriving at the device.
func (c *saClient) handleDispatch(req core.Request) {
	// The schedule message itself is control-plane traffic.
	c.ph.Radio().Receive(scheduleMsgBytes, radio.CauseControl, c.resetTail)

	due := req.Due
	sched := c.world.Sched
	if due.Before(sched.Now()) {
		due = sched.Now()
	}
	sched.ScheduleAt(due, func(now time.Time) {
		c.ph.Wakeup()
		// No GPS: the network already knows the coarse location.
		reading, err := c.ph.Sample(req.Task.Sensor, func(pt geo.Point, at time.Time) float64 {
			return c.world.Field.At(pt, at)
		})
		if err != nil {
			return
		}
		p := &saPendingUpload{req: req, reading: reading}
		c.pending = append(c.pending, p)

		// Fallback: promote just before the deadline if no tail window
		// showed up.
		forceAt := req.Deadline.Add(-time.Second)
		if forceAt.Before(now) {
			forceAt = now
		}
		p.forced = sched.ScheduleAt(forceAt, func(time.Time) {
			if p.done {
				return
			}
			c.flushPending()
		})

		// If the radio is already in its tail, ship immediately.
		if c.ph.Radio().InTail() {
			c.flushPending()
		}
	})
}

// flushPending uploads every pending reading in one batched transfer —
// the multi-task economy Experiment 3 measures.
func (c *saClient) flushPending() {
	var live []*saPendingUpload
	for _, p := range c.pending {
		if !p.done {
			live = append(live, p)
		}
	}
	c.pending = c.pending[:0]
	if len(live) == 0 {
		return
	}
	for _, p := range live {
		p.done = true
		p.forced.Cancel()
	}
	sr := c.ph.Radio().Send(len(live)*CrowdsensePayloadBytes, radio.CauseCrowdsensing, c.resetTail)
	now := c.world.Sched.Now()
	for _, p := range live {
		if sr.Promoted {
			c.met.forced(1)
		} else {
			c.met.piggybacked(1)
		}
		if err := c.server.ReceiveData(p.req.ID(), c.ph.ID(), p.reading, now); err == nil {
			c.res.Readings++
		}
	}
	// E_i feedback for the selector's energy-fairness term: one transfer,
	// one estimate.
	c.server.NoteDeviceEnergy(c.ph.ID(), uploadEnergyEstimateJ(c.ph, sr.Promoted))
	if len(live) > 1 {
		c.met.sharedBatch(len(live))
	}
}

// uploadEnergyEstimateJ is the client's coarse self-report of what an
// upload cost, used only for the selector's E_i fairness term.
func uploadEnergyEstimateJ(ph *phone.Phone, promoted bool) float64 {
	prof := ph.Radio().Profile()
	if promoted {
		return prof.PromotionEnergyJ() + prof.FullTailEnergyJ()
	}
	return prof.TxW * prof.TxDuration(CrowdsensePayloadBytes).Seconds()
}

// Run implements Framework.
func (s SenseAid) Run(w *World, tasks []core.Task) (*RunResult, error) {
	res := &RunResult{Framework: s.Name()}
	meter := newUploadMeter(s.Metrics, res)
	_, end, err := taskWindow(tasks)
	if err != nil {
		return nil, err
	}
	cfg := s.Server
	if cfg.Selector == (core.SelectorConfig{}) {
		def := core.DefaultServerConfig()
		def.SelectAll = cfg.SelectAll
		cfg = def
	}
	if cfg.Metrics == nil {
		// The scheduler's series land beside the upload series, exactly
		// as netserver arranges for a live deployment.
		cfg.Metrics = s.Metrics
	}
	controlGap := s.ControlPeriod
	if controlGap <= 0 {
		controlGap = 2 * time.Minute
	}
	resetTail := s.variant() == Basic

	clients := make(map[string]*saClient, len(w.Phones))
	// A sharded server invokes the Dispatcher from one goroutine per shard,
	// but the sim world (scheduler, radios, phones) is single-threaded by
	// design. Sharded runs therefore buffer dispatches under a lock and the
	// pump replays them on its own thread, sorted by (request, device) so
	// the run stays deterministic regardless of shard interleaving.
	type bufferedDispatch struct {
		req core.Request
		dev string
	}
	var (
		dispatchMu sync.Mutex
		dispatched []bufferedDispatch
		shardedRun = len(s.Regions) > 0
	)
	dispatcher := core.DispatcherFunc(func(req core.Request, dev core.DeviceState) {
		if !shardedRun {
			if c, ok := clients[dev.ID]; ok {
				c.handleDispatch(req)
			}
			return
		}
		dispatchMu.Lock()
		dispatched = append(dispatched, bufferedDispatch{req: req, dev: dev.ID})
		dispatchMu.Unlock()
	})
	replayDispatches := func() {
		if !shardedRun {
			return
		}
		dispatchMu.Lock()
		buf := dispatched
		dispatched = nil
		dispatchMu.Unlock()
		sort.Slice(buf, func(i, j int) bool {
			if buf[i].req.ID() != buf[j].req.ID() {
				return buf[i].req.ID() < buf[j].req.ID()
			}
			return buf[i].dev < buf[j].dev
		})
		for _, d := range buf {
			if c, ok := clients[d.dev]; ok {
				c.handleDispatch(d.req)
			}
		}
	}
	var (
		server core.Orchestrator
		single *core.Server
	)
	if shardedRun {
		sharded, err := core.NewShardedServer(cfg, dispatcher, s.Regions)
		if err != nil {
			return nil, fmt.Errorf("sim: sense-aid: %w", err)
		}
		server = sharded
	} else {
		var err error
		single, err = core.NewServer(cfg, dispatcher)
		if err != nil {
			return nil, fmt.Errorf("sim: sense-aid: %w", err)
		}
		server = single
	}

	// Bootstrap: every cohort member signs up for the campaign.
	for _, ph := range w.Phones {
		ph := ph
		c := &saClient{
			ph:         ph,
			world:      w,
			server:     server,
			resetTail:  resetTail,
			controlGap: controlGap,
			res:        res,
			met:        meter,
		}
		clients[ph.ID()] = c
		var sensorList []sensors.Type
		for t := sensors.Accelerometer; t <= sensors.LightMeter; t++ {
			if ph.HasSensor(t) {
				sensorList = append(sensorList, t)
			}
		}
		err := server.RegisterDevice(core.DeviceState{
			ID:         ph.ID(),
			Position:   ph.Position(),
			BatteryPct: ph.Battery().Percent(),
			LastComm:   ph.Radio().LastComm(),
			Sensors:    sensorList,
			Budget:     ph.Budget(),
		})
		if err != nil {
			return nil, fmt.Errorf("sim: sense-aid register %s: %w", ph.ID(), err)
		}
		ph.OnTraffic(func(tr traffic.Transfer) { c.onTraffic(tr) })
	}

	w.StartTraffic(end)

	// Submit tasks; the sink forwards to the observation hook (readings
	// are counted at ReceiveData time by the client flush path).
	sink := func(tid core.TaskID, dev string, r sensors.Reading) {
		if s.OnReading != nil {
			s.OnReading(tid, dev, r)
		}
	}
	for i := range tasks {
		t := tasks[i]
		if _, err := server.SubmitTask(t, w.Sched.Now(), sink); err != nil {
			return nil, fmt.Errorf("sim: sense-aid submit: %w", err)
		}
		// Round bookkeeping: count qualified devices at each due time.
		stored := t
		reqs, err := (&stored).Expand()
		if err == nil {
			for _, req := range reqs {
				area, sensor := req.Task.Area, req.Task.Sensor
				w.Sched.ScheduleAt(req.Due, func(time.Time) {
					probe := core.Task{Area: area, Sensor: sensor}
					res.Rounds++
					res.AvgQualified += float64(len(w.QualifiedForTask(&probe)))
				})
			}
		}
	}

	// Pump: drive the server at every request due time, refreshing the
	// eNodeB-sourced device state (position, radio timestamps) first.
	// Waitlisted requests (due time already past) are retried on the
	// wait-check period, per Algorithm 1's wait_check_thread.
	const waitCheckPeriod = 30 * time.Second
	var pumpAt func(at time.Time)
	pumpAt = func(at time.Time) {
		if at.Before(w.Sched.Now()) {
			at = w.Sched.Now()
		}
		w.Sched.ScheduleAt(at, func(now time.Time) {
			for _, ph := range w.Phones {
				clients[ph.ID()].reportState()
			}
			server.ProcessDue(now)
			replayDispatches()
			next, ok := server.NextWake()
			if !ok {
				return
			}
			if !next.After(now) {
				// Only waitlisted (past-due) requests remain: retry on
				// the wait-check period instead of spinning.
				next = now.Add(waitCheckPeriod)
			}
			// Never sleep past a wait-check period: mid-run task
			// mutations (update_task_param) can move NextWake earlier
			// than the instant this pump was scheduled for.
			if latest := now.Add(waitCheckPeriod); next.After(latest) {
				next = latest
			}
			pumpAt(next)
		})
	}
	if s.OnServer != nil && single != nil {
		s.OnServer(single)
	}
	if first, ok := server.NextWake(); ok {
		pumpAt(first)
	}

	w.Sched.Drain()
	finishAverages(res)

	// AvgSelected from the server's selection log: selections per round.
	sels := server.Selections()
	if len(sels) > 0 {
		total := 0
		for _, sel := range sels {
			total += len(sel.Devices)
		}
		res.AvgSelected = float64(total) / float64(len(sels))
	}
	res.Selections = sels

	if s.CountControl {
		w.Settle()
		res.PerDeviceJ = make(map[string]float64, len(w.Phones))
		for _, ph := range w.Phones {
			e := ph.CrowdsenseEnergyJ(true)
			res.PerDeviceJ[ph.ID()] = e
			res.TotalCrowdJ += e
			if e > 0 {
				res.Participating++
			}
		}
	} else {
		res.collect(w)
	}
	return res, nil
}
