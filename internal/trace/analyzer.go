package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"senseaid/internal/radio"
)

// Analysis is an ARO-style breakdown of a radio timeline: how long the
// radio spent in each RRC state, the energy that implies under a power
// profile, and the packet totals — the numbers AT&T's Application
// Resource Optimizer derives from packet captures, which the paper used
// to validate its tail-time mechanism.
type Analysis struct {
	// Window is the analysed time span.
	Window time.Duration `json:"window"`
	// StateDur maps each RRC state to total time spent in it.
	StateDur map[radio.RRCState]time.Duration `json:"state_dur"`
	// StateEnergyJ estimates each state's energy under the profile.
	StateEnergyJ map[radio.RRCState]float64 `json:"state_energy_j"`
	// TotalEnergyJ sums the state energies.
	TotalEnergyJ float64 `json:"total_energy_j"`
	// Promotions counts IDLE->PROMOTING transitions (the expensive event
	// Sense-Aid exists to avoid).
	Promotions int `json:"promotions"`
	// PromotionsByCause splits the promotions by the traffic cause that
	// triggered them (background vs crowdsensing vs control).
	PromotionsByCause map[radio.Cause]int `json:"promotions_by_cause"`
	// Packets and PacketBytes total the recorded transfers.
	Packets     int `json:"packets"`
	PacketBytes int `json:"packet_bytes"`
	// TailShare is tail time as a fraction of all RRC_CONNECTED time: a
	// high share means the radio mostly burns energy waiting, the waste
	// tail-riding converts into useful uplink.
	TailShare float64 `json:"tail_share"`
}

// Analyze walks a recorder's events up to end and produces the breakdown.
// The radio is assumed idle before the first event.
func Analyze(r *Recorder, prof radio.PowerProfile, end time.Time) Analysis {
	a := Analysis{
		StateDur:          make(map[radio.RRCState]time.Duration),
		StateEnergyJ:      make(map[radio.RRCState]float64),
		PromotionsByCause: make(map[radio.Cause]int),
	}
	events := r.Events()
	state := radio.StateIdle
	cursor := r.start
	if len(events) > 0 && events[0].At.Before(cursor) {
		cursor = events[0].At
	}

	account := func(until time.Time) {
		if until.After(end) {
			until = end
		}
		if d := until.Sub(cursor); d > 0 {
			a.StateDur[state] += d
		}
		cursor = until
	}

	for _, e := range events {
		if e.At.After(end) {
			break
		}
		switch e.Kind {
		case KindStateChange:
			account(e.At)
			if state == radio.StateIdle && e.State == radio.StatePromoting {
				a.Promotions++
				a.PromotionsByCause[e.Cause]++
			}
			state = e.State
		case KindPacket:
			a.Packets++
			a.PacketBytes += e.Bytes
		}
	}
	account(end)
	a.Window = end.Sub(r.start)

	powerFor := map[radio.RRCState]float64{
		radio.StateIdle:      prof.IdleW,
		radio.StatePromoting: prof.PromotionW,
		radio.StateConnected: prof.TxW,
		radio.StateTail:      prof.TailW,
	}
	for st, d := range a.StateDur {
		e := powerFor[st] * d.Seconds()
		a.StateEnergyJ[st] = e
		a.TotalEnergyJ += e
	}

	connected := a.StateDur[radio.StateConnected] + a.StateDur[radio.StateTail]
	if connected > 0 {
		a.TailShare = float64(a.StateDur[radio.StateTail]) / float64(connected)
	}
	return a
}

// Render prints the analysis as an aligned table.
func (a Analysis) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "radio analysis over %v: %d packets, %d bytes, %d promotions\n",
		a.Window, a.Packets, a.PacketBytes, a.Promotions)
	fmt.Fprintf(&b, "  %-22s %12s %10s\n", "state", "time", "energy(J)")
	states := make([]radio.RRCState, 0, len(a.StateDur))
	for st := range a.StateDur {
		states = append(states, st)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
	for _, st := range states {
		fmt.Fprintf(&b, "  %-22s %12v %10.3f\n", st, a.StateDur[st].Round(time.Millisecond), a.StateEnergyJ[st])
	}
	fmt.Fprintf(&b, "  total %38.3f\n", a.TotalEnergyJ)
	fmt.Fprintf(&b, "  tail share of connected time: %.0f%%\n", a.TailShare*100)
	return b.String()
}
