package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestCellOfIsStable(t *testing.T) {
	g := Grid{SizeM: 500}
	p := Point{Lat: 40.4274, Lon: -86.9169}
	if g.CellOf(p) != g.CellOf(p) {
		t.Fatal("CellOf not deterministic")
	}
	// Nearby points (well under a cell apart) share a cell unless they
	// straddle a boundary; far points never share one.
	far := Offset(p, 5_000, 5_000)
	if g.CellOf(p) == g.CellOf(far) {
		t.Fatalf("points 5km apart share cell %v", g.CellOf(p))
	}
}

// TestCoverContainsCirclePoints is the grid's safety property: every
// point inside a covered circle quantizes to a cell within the cover
// bounds.
func TestCoverContainsCirclePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		g := Grid{SizeM: 100 + rng.Float64()*2000}
		center := Point{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*300 - 150}
		c := Circle{Center: center, RadiusM: 10 + rng.Float64()*5000}
		b, ok := g.Cover(c)
		if !ok {
			continue // fallback envelope; nothing to verify
		}
		// Sample points inside the circle (offsets within the radius).
		for i := 0; i < 20; i++ {
			ang := rng.Float64() * 2 * math.Pi
			r := rng.Float64() * c.RadiusM
			p := Offset(center, r*math.Sin(ang), r*math.Cos(ang))
			if !c.Contains(p) {
				continue // flat-earth offset overshoot near the rim
			}
			cell := g.CellOf(p)
			if cell.Lat < b.LatMin || cell.Lat > b.LatMax || cell.Lon < b.LonMin || cell.Lon > b.LonMax {
				t.Fatalf("point %v in circle %v has cell %v outside cover %+v (grid %v)",
					p, c, cell, b, g.SizeM)
			}
		}
	}
}

func TestCoverFallbackCases(t *testing.T) {
	g := Grid{SizeM: 500}
	cases := []Circle{
		{Center: Point{Lat: 89, Lon: 0}, RadiusM: 100},         // beyond MaxGridLat
		{Center: Point{Lat: 0, Lon: 179.999}, RadiusM: 5000},   // antimeridian
		{Center: Point{Lat: 0, Lon: 0}, RadiusM: 0},            // invalid radius
		{Center: Point{Lat: math.NaN(), Lon: 0}, RadiusM: 100}, // invalid center
	}
	for _, c := range cases {
		if _, ok := g.Cover(c); ok {
			t.Errorf("Cover(%v) should report ok=false", c)
		}
	}
	if _, ok := (Grid{}).Cover(Circle{Center: Point{}, RadiusM: 100}); ok {
		t.Error("disabled grid should report ok=false")
	}
}

func TestCoverCountIsBounded(t *testing.T) {
	g := Grid{SizeM: 500}
	b, ok := g.Cover(Circle{Center: CSDepartment, RadiusM: 1000})
	if !ok {
		t.Fatal("campus circle should be coverable")
	}
	if n := b.Count(); n < 4 || n > 64 {
		t.Fatalf("1km circle over 500m cells covers %d cells, want a handful", n)
	}
}
