package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"senseaid/internal/obs"
	"senseaid/internal/sensors"
	"senseaid/internal/simclock"
)

func TestSelectionLogRing(t *testing.T) {
	l := newSelectionLog(3)
	mk := func(i int) Selection { return Selection{Request: fmt.Sprintf("r%d", i)} }

	for i := 0; i < 3; i++ {
		if l.add(mk(i)) {
			t.Fatalf("add %d dropped before ring filled", i)
		}
	}
	if !l.add(mk(3)) || !l.add(mk(4)) {
		t.Fatal("overwriting adds did not report drops")
	}
	if l.dropped != 2 {
		t.Fatalf("dropped = %d, want 2", l.dropped)
	}
	got := l.snapshot()
	want := []string{"r2", "r3", "r4"}
	if len(got) != len(want) {
		t.Fatalf("snapshot len = %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Request != w {
			t.Fatalf("snapshot[%d] = %q, want %q (oldest first)", i, got[i].Request, w)
		}
	}
}

func TestSelectionLogDefaultSize(t *testing.T) {
	l := newSelectionLog(0)
	if len(l.buf) != DefaultSelectionLogSize {
		t.Fatalf("default ring size = %d, want %d", len(l.buf), DefaultSelectionLogSize)
	}
}

func TestServerSelectionLogBound(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.SelectionLogSize = 2
	d := &recordingDispatcher{}
	s, err := NewServer(cfg, d)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	registerFresh(t, s, "a", "b", "c")

	tk := validTask()
	tk.SpatialDensity = 1
	tk.SamplingPeriod = time.Minute
	if _, err := s.SubmitTask(tk, simclock.Epoch, func(TaskID, string, sensors.Reading) {}); err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	// One hour at one-minute periods = 60 requests, far beyond the ring.
	for now := simclock.Epoch; !now.After(simclock.Epoch.Add(time.Hour)); now = now.Add(time.Minute) {
		s.ProcessDue(now)
		for _, c := range d.calls {
			reading := sensors.Reading{
				Sensor: sensors.Barometer, Value: 1013, Unit: "hPa",
				At: now, Where: c.dev.Position,
			}
			_ = s.ReceiveData(c.req.ID(), c.dev.ID, reading, now)
		}
		d.calls = nil
	}

	if got := len(s.Selections()); got != 2 {
		t.Fatalf("retained selections = %d, want ring size 2", got)
	}
	if s.SelectionsDropped() == 0 {
		t.Fatal("SelectionsDropped = 0, want > 0 after overflowing the ring")
	}
}

// TestStatsRace drives the scheduler from one goroutine while others hammer
// the read-side API. Run under -race this is the regression test for the
// unsynchronised Stats()/Selections() reads the observability PR fixed.
func TestStatsRace(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultServerConfig()
	cfg.Metrics = reg
	d := &recordingDispatcher{}
	s, err := NewServer(cfg, d)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	registerFresh(t, s, "a", "b", "c")

	tk := validTask()
	tk.SpatialDensity = 1
	tk.SamplingPeriod = time.Minute
	if _, err := s.SubmitTask(tk, simclock.Epoch, func(TaskID, string, sensors.Reading) {}); err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Stats()
				_ = s.Selections()
				_ = s.SelectionsDropped()
			}
		}()
	}

	for now := simclock.Epoch; now.Before(simclock.Epoch.Add(30 * time.Minute)); now = now.Add(time.Minute) {
		s.ProcessDue(now)
		for _, c := range d.calls {
			reading := sensors.Reading{
				Sensor: sensors.Barometer, Value: 1013, Unit: "hPa",
				At: now, Where: c.dev.Position,
			}
			_ = s.ReceiveData(c.req.ID(), c.dev.ID, reading, now)
		}
		d.calls = nil
	}
	close(stop)
	wg.Wait()

	// The registry counters must agree with the Stats view they mirror.
	st := s.Stats()
	if got := counterValue(t, reg, "senseaid_requests_total", "outcome", "satisfied"); got != uint64(st.RequestsSatisfied) {
		t.Fatalf("satisfied counter = %d, Stats = %d", got, st.RequestsSatisfied)
	}
	if got := counterValue(t, reg, "senseaid_readings_total", "outcome", "accepted"); got != uint64(st.ReadingsAccepted) {
		t.Fatalf("accepted counter = %d, Stats = %d", got, st.ReadingsAccepted)
	}
}

// counterValue digs one counter series out of a registry snapshot.
func counterValue(t *testing.T, reg *obs.Registry, name, labelKey, labelVal string) uint64 {
	t.Helper()
	for _, fam := range reg.Snapshot() {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Series {
			if labelKey == "" || s.Labels[labelKey] == labelVal {
				return uint64(*s.Value)
			}
		}
	}
	t.Fatalf("series %s{%s=%q} not found", name, labelKey, labelVal)
	return 0
}
