package senseaid

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"senseaid/internal/obs"
)

// TestBinariesEndToEnd builds the three deployable binaries and runs them
// together: senseaidd serves, senseaid-client answers schedules, and
// senseaid-cas submits a fast task and prints readings — the same flow an
// operator would run by hand.
func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test builds and runs executables")
	}
	bin := t.TempDir()
	for _, tool := range []string{"senseaidd", "senseaid-client", "senseaid-cas"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}

	addr := freeAddr(t)
	metricsAddr := freeAddr(t)

	// Start the server with its admin endpoint.
	server := exec.Command(filepath.Join(bin, "senseaidd"),
		"-addr", addr, "-metrics-addr", metricsAddr, "-tick", "50ms")
	serverOut := startCapture(t, server, "senseaidd")
	defer stop(t, server)
	waitForLine(t, serverOut, "listening", 10*time.Second)
	waitForLine(t, serverOut, "admin endpoint", 10*time.Second)

	if code, _ := httpGet(t, "http://"+metricsAddr+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	_, baseline := httpGet(t, "http://"+metricsAddr+"/metrics")
	tailBefore := sampleValue(baseline, `senseaid_uploads_total{path="tail"}`)

	// Start a device.
	device := exec.Command(filepath.Join(bin, "senseaid-client"),
		"-addr", addr, "-id", "smoke-phone", "-report", "100ms")
	deviceOut := startCapture(t, device, "senseaid-client")
	defer stop(t, device)
	waitForLine(t, deviceOut, "online", 10*time.Second)

	// Run a short campaign to completion.
	casCmd := exec.Command(filepath.Join(bin, "senseaid-cas"),
		"-addr", addr, "-period", "300ms", "-duration", "2s", "-density", "1")
	out, err := casCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("senseaid-cas: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "task task-") {
		t.Fatalf("cas output missing task submission:\n%s", text)
	}
	if !strings.Contains(text, "from smoke-phone") {
		t.Fatalf("cas output has no readings from the device:\n%s", text)
	}
	if strings.Contains(text, "collected 0 readings") {
		t.Fatalf("campaign collected nothing:\n%s", text)
	}

	// The admin endpoint must reflect the session that just ran: uploads
	// rode tail windows (the client reports every 100 ms, so the radio
	// tail never lapses) and the RPC latency series moved.
	code, body := httpGet(t, "http://"+metricsAddr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	if err := obs.CheckText(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v\n%s", err, body)
	}
	tailAfter := sampleValue(body, `senseaid_uploads_total{path="tail"}`)
	if tailAfter <= tailBefore {
		t.Fatalf("uploads_total{path=tail} did not increase: before=%v after=%v\n%s",
			tailBefore, tailAfter, body)
	}
	if v := sampleValue(body, `senseaid_rpc_seconds_count{role="device",type="send_sense_data"}`); v <= 0 {
		t.Fatalf("rpc_seconds_count{send_sense_data} = %v, want > 0\n%s", v, body)
	}
	if v := sampleValue(body, `senseaid_rpc_seconds_count{role="cas",type="task"}`); v <= 0 {
		t.Fatalf("rpc_seconds_count{task} = %v, want > 0\n%s", v, body)
	}

	code, status := httpGet(t, "http://"+metricsAddr+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz = %d, want 200", code)
	}
	if !strings.Contains(status, "uptime_seconds") {
		t.Fatalf("/statusz missing uptime:\n%s", status)
	}
}

// TestShardedBinaryEndToEnd boots senseaidd with two -regions flags and
// runs the same operator flow: the task lands on the shard covering its
// area (its ID carries the region name), readings flow back, and the
// admin endpoint exposes per-shard scheduler series.
func TestShardedBinaryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test builds and runs executables")
	}
	bin := t.TempDir()
	for _, tool := range []string{"senseaidd", "senseaid-client", "senseaid-cas"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}

	addr := freeAddr(t)
	metricsAddr := freeAddr(t)

	// West covers the default client/CAS position (the CS department);
	// east sits a few km away with no devices.
	server := exec.Command(filepath.Join(bin, "senseaidd"),
		"-addr", addr, "-metrics-addr", metricsAddr, "-tick", "50ms",
		"-regions", "west@40.4274,-86.9169,1500",
		"-regions", "east@40.4274,-86.8600,1500")
	serverOut := startCapture(t, server, "senseaidd")
	defer stop(t, server)
	waitForLine(t, serverOut, "listening", 10*time.Second)
	waitForLine(t, serverOut, "edge region west", 10*time.Second)
	waitForLine(t, serverOut, "edge region east", 10*time.Second)

	device := exec.Command(filepath.Join(bin, "senseaid-client"),
		"-addr", addr, "-id", "shard-phone", "-report", "100ms")
	deviceOut := startCapture(t, device, "senseaid-client")
	defer stop(t, device)
	waitForLine(t, deviceOut, "online", 10*time.Second)

	casCmd := exec.Command(filepath.Join(bin, "senseaid-cas"),
		"-addr", addr, "-period", "300ms", "-duration", "2s", "-density", "1")
	out, err := casCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("senseaid-cas: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "task west/task-") {
		t.Fatalf("cas output missing region-qualified task ID:\n%s", text)
	}
	if !strings.Contains(text, "from shard-phone") {
		t.Fatalf("cas output has no readings from the device:\n%s", text)
	}

	code, body := httpGet(t, "http://"+metricsAddr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	if err := obs.CheckText(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v\n%s", err, body)
	}
	for _, series := range []string{
		`senseaid_registered_devices{shard="west"}`,
		`senseaid_registered_devices{shard="east"}`,
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("/metrics missing per-shard series %s:\n%s", series, body)
		}
	}
	if v := sampleValue(body, `senseaid_registered_devices{shard="west"}`); v != 1 {
		t.Fatalf("west shard devices = %v, want 1\n%s", v, body)
	}
}

// TestCrashRestartBinaryEndToEnd is the durability story at the process
// level: senseaidd runs with -state-dir, a campaign gets going, the
// server is SIGKILLed mid-campaign, and a fresh senseaidd on the same
// address and state directory picks the campaign back up — the device
// client's reconnect supervisor redials, and the CAS (running with
// -retry-reconnect) reclaims its original task instead of scheduling a
// twin.
func TestCrashRestartBinaryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test builds and runs executables")
	}
	bin := t.TempDir()
	for _, tool := range []string{"senseaidd", "senseaid-client", "senseaid-cas"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}

	// The listen address must survive the restart (clients redial it);
	// the admin endpoint gets a fresh port per incarnation.
	addr := freeAddr(t)
	stateDir := t.TempDir()

	server := exec.Command(filepath.Join(bin, "senseaidd"),
		"-addr", addr, "-tick", "50ms",
		"-state-dir", stateDir, "-snapshot-interval", "200ms")
	serverOut := startCapture(t, server, "senseaidd-1")
	defer stop(t, server)
	waitForLine(t, serverOut, "listening", 10*time.Second)
	waitForLine(t, serverOut, "restarts 0", 10*time.Second)

	device := exec.Command(filepath.Join(bin, "senseaid-client"),
		"-addr", addr, "-id", "crash-phone", "-report", "100ms")
	deviceOut := startCapture(t, device, "senseaid-client")
	defer stop(t, device)
	waitForLine(t, deviceOut, "online", 10*time.Second)

	casCmd := exec.Command(filepath.Join(bin, "senseaid-cas"),
		"-addr", addr, "-retry-reconnect",
		"-period", "300ms", "-duration", "8s", "-density", "1")
	casOut := startCapture(t, casCmd, "senseaid-cas")
	defer stop(t, casCmd)
	waitForLine(t, casOut, "task task-", 10*time.Second)
	waitForLine(t, casOut, "from crash-phone", 10*time.Second)

	// kill -9 mid-campaign: no drain, no final snapshot.
	if err := server.Process.Kill(); err != nil {
		t.Fatalf("kill server: %v", err)
	}
	_, _ = server.Process.Wait()
	waitForLine(t, casOut, "server connection lost", 10*time.Second)

	metricsAddr := freeAddr(t)
	server2 := exec.Command(filepath.Join(bin, "senseaidd"),
		"-addr", addr, "-metrics-addr", metricsAddr, "-tick", "50ms",
		"-state-dir", stateDir, "-snapshot-interval", "200ms")
	server2Out := startCapture(t, server2, "senseaidd-2")
	defer stop(t, server2)
	waitForLine(t, server2Out, "restarts 1", 10*time.Second)
	if !server2Out.contains("replayed") {
		t.Fatalf("restart did not report replay:\n%s", server2Out.dump())
	}

	// The CAS must get its original task back, not a twin.
	waitForLine(t, casOut, "reclaimed", 15*time.Second)
	if casOut.contains("resubmitted as") {
		t.Fatalf("task was duplicated instead of reclaimed:\n%s", casOut.dump())
	}

	// The campaign runs to completion against the restarted server.
	casDone := make(chan error, 1)
	go func() { casDone <- casCmd.Wait() }()
	select {
	case err := <-casDone:
		if err != nil {
			t.Fatalf("senseaid-cas exited with %v:\n%s", err, casOut.dump())
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("senseaid-cas never finished:\n%s", casOut.dump())
	}
	if !casOut.contains("collected") || casOut.contains("collected 0 readings") {
		t.Fatalf("campaign collected nothing after the restart:\n%s", casOut.dump())
	}

	_, body := httpGet(t, "http://"+metricsAddr+"/metrics")
	if v := sampleValue(body, "senseaid_restarts_total"); v != 1 {
		t.Fatalf("senseaid_restarts_total = %v, want 1\n%s", v, body)
	}
	if v := sampleValue(body, "senseaid_recovery_last_unix"); v <= 0 {
		t.Fatalf("senseaid_recovery_last_unix = %v, want > 0\n%s", v, body)
	}
	if v := sampleValue(body, `senseaid_recoveries_total{outcome="restored"}`); v != 1 {
		t.Fatalf(`senseaid_recoveries_total{outcome="restored"} = %v, want 1`+"\n%s", v, body)
	}
}

// httpGet fetches a URL and returns the status code and body.
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// sampleValue extracts one sample's value from Prometheus text output;
// missing series read as 0 so before/after comparisons stay simple.
func sampleValue(text, series string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}

// freeAddr reserves a loopback port and releases it for the server.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// lineBuffer accumulates a process's output for polling.
type lineBuffer struct {
	mu    sync.Mutex
	lines []string
}

func (b *lineBuffer) add(line string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lines = append(b.lines, line)
}

func (b *lineBuffer) contains(substr string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, l := range b.lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func (b *lineBuffer) dump() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Join(b.lines, "\n")
}

func startCapture(t *testing.T, cmd *exec.Cmd, name string) *lineBuffer {
	t.Helper()
	buf := &lineBuffer{}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			buf.add(fmt.Sprintf("[%s] %s", name, sc.Text()))
		}
	}()
	return buf
}

func waitForLine(t *testing.T, buf *lineBuffer, substr string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !buf.contains(substr) {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %q; output so far:\n%s", substr, buf.dump())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func stop(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if cmd.Process == nil {
		return
	}
	_ = cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		_, _ = cmd.Process.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		_ = cmd.Process.Kill()
	}
}
