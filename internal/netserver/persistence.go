package netserver

// This file wires the core's durability contract (core.SnapshotState,
// core.JournalRecord, Recover) to the persist package's files. The
// netserver owns the policy: one store per scheduling core ("core" for a
// single-region deployment, the region name per shard), recovery before
// the listener accepts a single connection, a periodic snapshot loop,
// and a final snapshot on graceful shutdown. DESIGN.md §11 carries the
// crash-consistency argument.

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"senseaid/internal/core"
	"senseaid/internal/persist"
	"senseaid/internal/wire"
)

// storeNameSingle names the single-region deployment's state files.
const storeNameSingle = "core"

// storeNameAgg names the live-aggregation tier's spill store. The tier's
// recent windows are soft state (they can be rebuilt from a few minutes
// of traffic), so the store holds snapshots only — no journal records —
// and a load failure resets it instead of refusing to boot.
const storeNameAgg = "agg"

// persistedState is the snapshot payload as written to disk: the core's
// state plus the netserver-level restart bookkeeping that must survive
// alongside it (a restart is only observable as a restart if the counter
// rides in the state itself).
type persistedState struct {
	Restarts int                `json:"restarts"`
	SavedAt  time.Time          `json:"saved_at"`
	Core     core.SnapshotState `json:"core"`
}

// journalGate adapts one persist.Store to core.JournalSink. It stays
// disarmed through recovery — replaying a journal must never append the
// replayed mutations back onto the journal — and is armed only once the
// post-recovery snapshot is committed, so every record it accepts
// belongs to the epoch that snapshot opened.
type journalGate struct {
	srv   *Server
	store *persist.Store
	armed atomic.Bool
	// shipMu orders this store's writes with their replica shipments:
	// a snapshot and the journal records numbered after it must reach a
	// replica in store-write order, or the replica could append a record
	// and then rotate it into a stale epoch when the older snapshot
	// lands. Appends and snapshot commits on one store already serialise
	// inside persist.Store; this mutex extends that ordering to the tee.
	shipMu sync.Mutex
}

func (g *journalGate) Append(rec core.JournalRecord) {
	if !g.armed.Load() {
		return
	}
	raw, err := json.Marshal(rec)
	if err == nil {
		g.shipMu.Lock()
		err = g.store.AppendRaw(raw)
		if err == nil {
			g.srv.pers.ship(wire.TypeJournalShip,
				wire.JournalShip{Store: g.store.Name(), Record: raw})
		}
		g.shipMu.Unlock()
	}
	if err != nil {
		// An append failure (disk full, fd gone) loses this mutation from
		// the journal; the next periodic snapshot re-establishes a
		// consistent cut. Count it loudly rather than crash the server —
		// availability is the product, durability is best-effort between
		// snapshots.
		g.srv.met.journalErrors.Inc()
		g.srv.log.Errorf("journal %s: %v", g.store.Name(), err)
		return
	}
	g.srv.met.journalAppends.Inc()
}

// persistedCore pairs one scheduling core with its on-disk store.
type persistedCore struct {
	name  string
	store *persist.Store
	gate  *journalGate
	core  *core.Server
}

// persister manages every store of one Server.
type persister struct {
	srv    *Server
	stores []*persistedCore

	// aggStore spills the live-aggregation tier's retained windows; nil
	// when the tier is disabled. It ships to replicas like every other
	// store, so a promoted standby keeps recent windows too.
	aggStore *persist.Store

	// replMu guards links: standby replicas attached for journal
	// shipping (DESIGN.md §14). Every store write tees its exact bytes
	// to every link, so a replica's state directory converges on a
	// byte-identical copy of the primary's.
	replMu sync.Mutex
	links  []*conn
}

// attachReplica registers a replica connection and immediately ships a
// fresh snapshot of every store through it, so the replica's files hold
// a consistent cut before any journal record arrives. snapshotAll runs
// outside replMu (commitOne takes each store's ship mutex, and ship
// re-takes replMu) and ships to every link — re-snapshotting an
// already-attached replica is harmless.
func (p *persister) attachReplica(c *conn) {
	p.replMu.Lock()
	p.links = append(p.links, c)
	n := len(p.links)
	p.replMu.Unlock()
	p.srv.met.replicaLinks.Set(float64(n))
	p.snapshotAll()
}

func (p *persister) detachReplica(c *conn) {
	p.replMu.Lock()
	for i, l := range p.links {
		if l == c {
			p.links = append(p.links[:i], p.links[i+1:]...)
			break
		}
	}
	n := len(p.links)
	p.replMu.Unlock()
	p.srv.met.replicaLinks.Set(float64(n))
}

// ship tees one store write to every attached replica. Frames ride the
// replica connection's coalescer, so shipping never blocks the caller;
// a send failure closes the link's connection — serveNode's read loop
// notices and detaches it — because a dead or wedged standby must never
// stall the primary's mutation path.
func (p *persister) ship(t wire.MsgType, payload interface{}) {
	p.replMu.Lock()
	if len(p.links) == 0 {
		p.replMu.Unlock()
		return
	}
	links := append([]*conn(nil), p.links...)
	p.replMu.Unlock()
	for _, c := range links {
		cc := c
		cc.notify(t, payload, func(err error) {
			if err != nil {
				p.srv.met.replShipErrors.Inc()
				_ = cc.nc.Close()
			}
		})
	}
}

// RecoveryInfo summarizes what Listen recovered from the state
// directory. The zero value means persistence was not configured.
type RecoveryInfo struct {
	// Restarts counts process starts against this state directory after
	// the first; it is the value of senseaid_restarts_total.
	Restarts int `json:"restarts"`
	// Replayed and Skipped count journal records across all stores.
	Replayed int `json:"replayed"`
	Skipped  int `json:"skipped"`
	// Outcome is "fresh" (no prior state), "restored" (state loaded), or
	// "reset" (corrupt state moved aside under StateRecover).
	Outcome string `json:"outcome,omitempty"`
}

// initPersistence opens the state stores and routes the core's journal
// into them. Called before the core is constructed (the sharded core
// captures its per-shard sinks at construction); recovery itself runs
// after, in recover().
func (s *Server) initPersistence() error {
	p := &persister{srv: s}
	names := []string{storeNameSingle}
	if len(s.cfg.Regions) > 0 {
		names = names[:0]
		for _, r := range s.cfg.Regions {
			names = append(names, r.Name)
		}
	}
	gates := make(map[string]*journalGate, len(names))
	for _, name := range names {
		st, err := persist.Open(s.cfg.StateDir, name)
		if err != nil {
			return fmt.Errorf("netserver: %w", err)
		}
		g := &journalGate{srv: s, store: st}
		gates[name] = g
		p.stores = append(p.stores, &persistedCore{name: name, store: st, gate: g})
	}
	if len(s.cfg.Regions) > 0 {
		s.cfg.Core.ShardJournal = func(region string) core.JournalSink {
			if g, ok := gates[region]; ok {
				return g
			}
			return nil
		}
	} else {
		s.cfg.Core.Journal = gates[storeNameSingle]
	}
	if s.agg != nil {
		for _, name := range names {
			if name == storeNameAgg {
				return fmt.Errorf("netserver: region name %q collides with the aggregation spill store", storeNameAgg)
			}
		}
		st, err := persist.Open(s.cfg.StateDir, storeNameAgg)
		if err != nil {
			return fmt.Errorf("netserver: %w", err)
		}
		p.aggStore = st
	}
	s.pers = p
	return nil
}

// recoverAgg restores the aggregation tier's retained windows from the
// spill store. Every failure path resets the store and carries on: the
// windows are a cache of the last few minutes of traffic, never worth
// refusing to boot over.
func (p *persister) recoverAgg() {
	if p.aggStore == nil {
		return
	}
	res, err := p.aggStore.Load()
	if err != nil {
		p.srv.log.Errorf("agg spill store: %v; resetting", err)
		_ = p.aggStore.Reset()
		return
	}
	if res.Snapshot == nil {
		return
	}
	if err := p.srv.agg.Restore(res.Snapshot); err != nil {
		// Typically a window-length change across the restart.
		p.srv.log.Errorf("agg spill store: %v; starting empty", err)
		return
	}
	p.srv.log.Infof("agg tier restored %d retained window bytes", len(res.Snapshot))
}

// commitAgg spills the tier's retained windows and ships them to any
// replicas. No journal records follow (the tier is snapshot-only), so
// no ship-ordering mutex is needed.
func (p *persister) commitAgg() {
	if p.aggStore == nil {
		return
	}
	raw, err := p.srv.agg.SnapshotState()
	if err == nil {
		_, err = p.aggStore.CommitRaw(raw)
	}
	if err != nil {
		p.srv.log.Errorf("agg snapshot: %v", err)
		return
	}
	p.ship(wire.TypeSnapshotShip, wire.SnapshotShip{Store: storeNameAgg, Payload: raw})
}

// bindCores attaches each store to its scheduling core once the
// orchestrator exists.
func (p *persister) bindCores() error {
	switch c := p.srv.core.(type) {
	case *core.Server:
		p.stores[0].core = c
	case *core.ShardedServer:
		byName := make(map[string]*core.Server, c.Shards())
		for i := 0; i < c.Shards(); i++ {
			srv, reg, err := c.Shard(i)
			if err != nil {
				return err
			}
			byName[reg.Name] = srv
		}
		for _, ps := range p.stores {
			srv, ok := byName[ps.name]
			if !ok {
				return fmt.Errorf("netserver: no shard for state store %q", ps.name)
			}
			ps.core = srv
		}
	default:
		return fmt.Errorf("netserver: unpersistable orchestrator %T", c)
	}
	return nil
}

// recover loads every store, rebuilds the cores, commits the
// post-recovery snapshot that opens the new journal epoch, and arms the
// gates. It must complete before the listener accepts traffic: a
// connection served against half-recovered state would journal records
// into an epoch that does not exist yet.
func (p *persister) recover() (RecoveryInfo, error) {
	info := RecoveryInfo{Outcome: "fresh"}
	prevRestarts, hadState := 0, false
	for _, ps := range p.stores {
		res, err := ps.store.Load()
		switch {
		case persist.IsCorrupt(err):
			if !p.srv.cfg.StateRecover {
				return info, fmt.Errorf("netserver: %w (restart with -state-recover to move the damaged files aside and start fresh)", err)
			}
			p.srv.log.Errorf("state store %s corrupt: %v; moving files aside", ps.name, err)
			if rerr := ps.store.Reset(); rerr != nil {
				return info, fmt.Errorf("netserver: %w", rerr)
			}
			info.Outcome = "reset"
			res = &persist.LoadResult{}
		case err != nil:
			return info, fmt.Errorf("netserver: %w", err)
		}
		if res.TruncatedBytes > 0 {
			// The expected artifact of a crash mid-append: the torn tail is
			// dropped, everything before it replays.
			p.srv.met.journalTruncatedBytes.Add(uint64(res.TruncatedBytes))
			p.srv.log.Infof("state store %s: %d bytes of torn journal tail discarded", ps.name, res.TruncatedBytes)
		}

		var snap *core.SnapshotState
		if res.Snapshot != nil {
			var st persistedState
			if uerr := json.Unmarshal(res.Snapshot, &st); uerr != nil {
				// CRC-valid bytes that are not our schema: hand-editing or
				// version skew. Same policy as a bad CRC — refuse by default.
				if !p.srv.cfg.StateRecover {
					return info, fmt.Errorf("netserver: state store %s: snapshot does not decode: %v (restart with -state-recover to move it aside)", ps.name, uerr)
				}
				p.srv.log.Errorf("state store %s: snapshot does not decode: %v; moving files aside", ps.name, uerr)
				if rerr := ps.store.Reset(); rerr != nil {
					return info, fmt.Errorf("netserver: %w", rerr)
				}
				info.Outcome = "reset"
				res = &persist.LoadResult{}
			} else {
				snap = &st.Core
				if st.Restarts > prevRestarts {
					prevRestarts = st.Restarts
				}
			}
		}
		if res.HadState {
			hadState = true
		}

		records := make([]core.JournalRecord, 0, len(res.Records))
		for _, raw := range res.Records {
			var rec core.JournalRecord
			if uerr := json.Unmarshal(raw, &rec); uerr != nil {
				info.Skipped++ // CRC-valid but schema-bad; salvage the rest
				continue
			}
			records = append(records, rec)
		}
		rres, err := ps.core.Recover(snap, records, p.srv.casSink)
		if err != nil {
			return info, fmt.Errorf("netserver: recover %s: %w", ps.name, err)
		}
		info.Replayed += rres.Applied
		info.Skipped += rres.Skipped
	}
	if hadState {
		if info.Outcome == "fresh" {
			info.Outcome = "restored"
		}
		info.Restarts = prevRestarts + 1
	}
	if ss, ok := p.srv.core.(*core.ShardedServer); ok {
		// Each shard restored its own devices and tasks; the routing layer
		// re-learns who owns what before any traffic arrives.
		ss.RebuildRouting()
	}
	// Commit the post-recovery snapshot: it folds the replayed journal
	// into a fresh consistent cut and opens the journal epoch the armed
	// gates will append to.
	for _, ps := range p.stores {
		if err := p.commitOne(ps, info.Restarts); err != nil {
			return info, err
		}
		ps.gate.armed.Store(true)
	}
	p.recoverAgg()
	return info, nil
}

// commitOne snapshots one core into its store, recording the snapshot
// metrics. The capture, the commit, and the replica shipment all happen
// under the store's ship mutex: any journal record numbered after this
// snapshot is therefore also shipped after it (its Append is queued
// behind the mutex), so a replica never rotates a needed record away.
func (p *persister) commitOne(ps *persistedCore, restarts int) error {
	start := time.Now()
	ps.gate.shipMu.Lock()
	raw, err := json.Marshal(persistedState{
		Restarts: restarts,
		SavedAt:  start,
		Core:     ps.core.Snapshot(),
	})
	var n int64
	if err == nil {
		n, err = ps.store.CommitRaw(raw)
	}
	if err == nil {
		p.ship(wire.TypeSnapshotShip, wire.SnapshotShip{Store: ps.name, Payload: raw})
	}
	ps.gate.shipMu.Unlock()
	if err != nil {
		p.srv.met.snapshotsErr.Inc()
		return fmt.Errorf("netserver: snapshot %s: %w", ps.name, err)
	}
	p.srv.met.snapshotsOK.Inc()
	p.srv.met.snapshotSeconds.ObserveDuration(time.Since(start))
	p.srv.met.snapshotBytes.Set(float64(n))
	return nil
}

// snapshotAll takes a periodic (or final) snapshot of every core. A
// failing store is logged and skipped — the journal keeps the mutations
// until a later snapshot succeeds.
func (p *persister) snapshotAll() {
	for _, ps := range p.stores {
		if err := p.commitOne(ps, p.srv.recovery.Restarts); err != nil {
			p.srv.log.Errorf("%v", err)
		}
	}
	p.commitAgg()
}

// closeStores releases the journal file handles. sync flushes them to
// stable storage first (the graceful path); the abrupt path skips it,
// exactly as a killed process would.
func (p *persister) closeStores(sync bool) {
	for _, ps := range p.stores {
		if sync {
			if err := ps.store.Sync(); err != nil {
				p.srv.log.Errorf("sync %s: %v", ps.name, err)
			}
		}
		_ = ps.store.Close()
	}
	if p.aggStore != nil {
		if sync {
			if err := p.aggStore.Sync(); err != nil {
				p.srv.log.Errorf("sync %s: %v", storeNameAgg, err)
			}
		}
		_ = p.aggStore.Close()
	}
}

// snapshotLoop commits a snapshot every SnapshotInterval until shutdown.
func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.SnapshotInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			s.pers.snapshotAll()
		}
	}
}
