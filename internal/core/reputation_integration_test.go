package core

import (
	"testing"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/reputation"
	"senseaid/internal/sensors"
	"senseaid/internal/simclock"
)

// newReputationServer builds a server with the reputation tracker wired
// and a strict reliability cutoff.
func newReputationServer(t *testing.T) (*Server, *recordingDispatcher, *reputation.Tracker) {
	t.Helper()
	tr := reputation.NewTracker(reputation.Config{})
	cfg := DefaultServerConfig()
	cfg.Reputation = tr
	cfg.Selector.Rho = 2.0
	cfg.Selector.MinReliability = 0.3
	d := &recordingDispatcher{}
	s, err := NewServer(cfg, d)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s, d, tr
}

func TestOutlierFlaggedAndScored(t *testing.T) {
	s, d, tr := newReputationServer(t)
	registerFresh(t, s, "a", "b", "c", "liar")
	tk := validTask()
	tk.SpatialDensity = 4
	if _, err := s.SubmitTask(tk, simclock.Epoch, func(TaskID, string, sensors.Reading) {}); err != nil {
		t.Fatal(err)
	}
	s.ProcessDue(simclock.Epoch)
	if len(d.calls) != 4 {
		t.Fatalf("dispatched %d, want 4", len(d.calls))
	}
	at := simclock.Epoch.Add(time.Second)
	for _, c := range d.calls {
		value := 1013.2
		if c.dev.ID == "liar" {
			value = 940.0
		}
		reading := sensors.Reading{
			Sensor: sensors.Barometer, Value: value, Unit: "hPa",
			At: at, Where: geo.CSDepartment,
		}
		if err := s.ReceiveData(c.req.ID(), c.dev.ID, reading, at); err != nil {
			t.Fatalf("ReceiveData(%s): %v", c.dev.ID, err)
		}
	}
	if tr.Count("liar", reputation.OutcomeOutlier) != 1 {
		t.Fatalf("liar outlier count = %d, want 1", tr.Count("liar", reputation.OutcomeOutlier))
	}
	if tr.Count("a", reputation.OutcomeAccepted) != 1 {
		t.Fatalf("honest accepted count = %d, want 1", tr.Count("a", reputation.OutcomeAccepted))
	}
	// Reliability propagated into the device store.
	liar, _ := s.Devices().Get("liar")
	honest, _ := s.Devices().Get("a")
	if liar.Reliability >= honest.Reliability {
		t.Fatalf("liar reliability %.2f not below honest %.2f", liar.Reliability, honest.Reliability)
	}
}

func TestUnreliableDeviceEventuallyExcluded(t *testing.T) {
	s, d, tr := newReputationServer(t)
	registerFresh(t, s, "good1", "good2", "good3", "liar")

	// Drive the liar's score below the 0.3 cutoff directly through the
	// tracker (as many bad rounds would).
	for i := 0; i < 12; i++ {
		tr.Record("liar", reputation.OutcomeMissed)
	}
	s.Devices().SetReliability("liar", tr.Score("liar"))

	tk := validTask()
	tk.SpatialDensity = 3
	if _, err := s.SubmitTask(tk, simclock.Epoch, func(TaskID, string, sensors.Reading) {}); err != nil {
		t.Fatal(err)
	}
	s.ProcessDue(simclock.Epoch)
	for _, c := range d.calls {
		if c.dev.ID == "liar" {
			t.Fatal("unreliable device selected despite MinReliability cutoff")
		}
	}
	if len(d.calls) != 3 {
		t.Fatalf("dispatched %d, want 3 honest devices", len(d.calls))
	}
}

func TestRejectedReadingHurtsReputation(t *testing.T) {
	s, d, tr := newReputationServer(t)
	registerFresh(t, s, "a", "b")
	tk := validTask()
	tk.SpatialDensity = 1
	if _, err := s.SubmitTask(tk, simclock.Epoch, func(TaskID, string, sensors.Reading) {}); err != nil {
		t.Fatal(err)
	}
	s.ProcessDue(simclock.Epoch)
	dev := d.calls[0].dev.ID
	at := simclock.Epoch.Add(time.Second)
	bad := sensors.Reading{Sensor: sensors.Gyroscope, At: at, Where: geo.CSDepartment}
	if err := s.ReceiveData(d.calls[0].req.ID(), dev, bad, at); err == nil {
		t.Fatal("wrong-sensor reading accepted")
	}
	if tr.Count(dev, reputation.OutcomeRejected) != 1 {
		t.Fatal("rejection not recorded")
	}
	if got, _ := s.Devices().Get(dev); got.Reliability >= 1 {
		t.Fatalf("reliability unchanged after rejection: %v", got.Reliability)
	}
}

func TestMissedDeadlineRecordedInReputation(t *testing.T) {
	s, d, tr := newReputationServer(t)
	registerFresh(t, s, "a", "b")
	tk := validTask()
	tk.SpatialDensity = 1
	if _, err := s.SubmitTask(tk, simclock.Epoch, func(TaskID, string, sensors.Reading) {}); err != nil {
		t.Fatal(err)
	}
	s.ProcessDue(simclock.Epoch)
	missed := d.calls[0].dev.ID
	s.ProcessDue(simclock.Epoch.Add(11 * time.Minute))
	if tr.Count(missed, reputation.OutcomeMissed) != 1 {
		t.Fatalf("missed count = %d, want 1", tr.Count(missed, reputation.OutcomeMissed))
	}
}

func TestScoreIncludesReliabilityFactor(t *testing.T) {
	sel, err := NewSelector(SelectorConfig{Alpha: 0, Beta: 0, Gamma: 0, Phi: 0, Rho: 10, MaxUses: 10})
	if err != nil {
		t.Fatal(err)
	}
	reliable := freshDevice("r")
	reliable.Reliability = 1.0
	shaky := freshDevice("s")
	shaky.Reliability = 0.5
	if got := sel.Score(reliable, simclock.Epoch); got != 0 {
		t.Fatalf("reliable score = %v, want 0", got)
	}
	if got := sel.Score(shaky, simclock.Epoch); got != 5 {
		t.Fatalf("shaky score = %v, want 5", got)
	}
}

func TestSelectorConfigReliabilityValidation(t *testing.T) {
	bad := DefaultSelectorConfig()
	bad.Rho = -1
	if _, err := NewSelector(bad); err == nil {
		t.Fatal("negative Rho accepted")
	}
	bad = DefaultSelectorConfig()
	bad.MinReliability = 1.5
	if _, err := NewSelector(bad); err == nil {
		t.Fatal("MinReliability > 1 accepted")
	}
}

func TestRegisterReliabilityDefaults(t *testing.T) {
	st := NewDeviceStore()
	d := freshDevice("x") // zero Reliability
	if err := st.Register(d); err != nil {
		t.Fatal(err)
	}
	got, _ := st.Get("x")
	if got.Reliability != 1 {
		t.Fatalf("default reliability = %v, want 1", got.Reliability)
	}
	bad := freshDevice("y")
	bad.Reliability = 2
	if err := st.Register(bad); err == nil {
		t.Fatal("reliability > 1 accepted")
	}
	st.SetReliability("x", -5)
	got, _ = st.Get("x")
	if got.Reliability != 0 {
		t.Fatalf("SetReliability clamp = %v, want 0", got.Reliability)
	}
	st.SetReliability("ghost", 0.5) // must not panic
}
