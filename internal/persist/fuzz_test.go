package persist

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeSnapshot feeds arbitrary bytes through the snapshot decoder:
// it must never panic, and a mutated valid snapshot must either decode
// to the identical payload or be reported corrupt — never misread.
func FuzzDecodeSnapshot(f *testing.F) {
	valid := func(payload []byte) []byte {
		buf := make([]byte, snapHeaderLen+len(payload))
		copy(buf, snapMagic)
		binary.BigEndian.PutUint32(buf[8:], SnapshotVersion)
		binary.BigEndian.PutUint64(buf[12:], 7)
		binary.BigEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(payload))
		copy(buf[snapHeaderLen:], payload)
		return buf
	}
	f.Add([]byte{})
	f.Add([]byte(snapMagic))
	f.Add(valid([]byte(`{"tasks":[1,2,3]}`)))
	f.Add(valid([]byte(`null`))[:12])
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, _, cerr := decodeSnapshot("fuzz.snap", data)
		if cerr == nil && len(data) < snapHeaderLen {
			t.Fatal("decoded a snapshot shorter than its header")
		}
		if cerr == nil {
			// Accepted payloads must pass the CRC actually stored.
			if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[20:]) {
				t.Fatal("accepted payload does not match stored CRC")
			}
		}
	})
}

// FuzzDecodeJournal feeds arbitrary bytes through the journal decoder:
// it must never panic, every accepted record must be CRC-consistent with
// the stream, and accepted-prefix + truncated-suffix must cover the file.
func FuzzDecodeJournal(f *testing.F) {
	frame := func(payloads ...[]byte) []byte {
		var buf []byte
		for _, p := range payloads {
			hdr := make([]byte, 8)
			binary.BigEndian.PutUint32(hdr, uint32(len(p)))
			binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(p))
			buf = append(buf, hdr...)
			buf = append(buf, p...)
		}
		return buf
	}
	f.Add([]byte{})
	f.Add(frame([]byte(`{"seq":1}`)))
	f.Add(frame([]byte(`{"seq":1}`), []byte(`{"seq":2}`)))
	f.Add(frame([]byte(`{"seq":1}`))[:5])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, truncated := decodeJournal(data)
		consumed := 0
		for _, r := range recs {
			consumed += 8 + len(r)
		}
		if consumed+int(truncated) != len(data) {
			t.Fatalf("prefix %d + truncated %d != file %d", consumed, truncated, len(data))
		}
	})
}

// FuzzStoreLoad writes arbitrary bytes as both state files and ensures a
// full Load never panics: it either succeeds (possibly with truncation)
// or reports corruption cleanly.
func FuzzStoreLoad(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte(snapMagic), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, snap, journal []byte) {
		dir := t.TempDir()
		if len(snap) > 0 {
			if err := os.WriteFile(filepath.Join(dir, "core.snap"), snap, 0o644); err != nil {
				t.Skip()
			}
		}
		if len(journal) > 0 {
			if err := os.WriteFile(filepath.Join(dir, "core.journal.1"), journal, 0o644); err != nil {
				t.Skip()
			}
		}
		st, err := Open(dir, "core")
		if err != nil {
			t.Fatal(err)
		}
		res, err := st.Load()
		if err != nil {
			if len(snap) > 0 && !IsCorrupt(err) {
				t.Fatalf("non-corrupt error from hostile input: %v", err)
			}
			return
		}
		// Whatever loaded, committing over it must work.
		if _, err := st.Commit(map[string]int{"records": len(res.Records)}); err != nil {
			t.Fatalf("Commit after hostile load: %v", err)
		}
	})
}
