package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"runtime"
	"time"
)

// AdminConfig parameterises the admin HTTP server.
type AdminConfig struct {
	// Addr is the listen address, e.g. "127.0.0.1:7118". ":0" picks a
	// free port (see AdminServer.Addr).
	Addr string
	// Registry backs /metrics; nil uses Default().
	Registry *Registry
	// Health, when set, is consulted by /healthz (liveness); a non-nil
	// error turns the probe into a 503 carrying the error text.
	Health func() error
	// Ready, when set, is consulted by /readyz (readiness): a serving
	// layer returns an error until recovery has completed and its
	// listener is open. Nil means always ready, preserving the old
	// single-probe behaviour.
	Ready func() error
	// Status, when set, supplies the payload of /statusz (current tasks,
	// device counts, selection summaries — whatever the serving layer
	// wants operators to see). The value is rendered as JSON.
	Status func() any
	// Tracer, when set, backs /traces with its retained trace ring.
	Tracer *Tracer
	// Timeline, when set, backs /tasks with per-task lifecycles.
	Timeline *TimelineStore
	// Pprof mounts net/http/pprof under /debug/pprof/ (CPU and heap
	// profiles, goroutine dumps). Off by default: profiling endpoints
	// can stall the process and belong behind an operator flag.
	Pprof bool
}

// AdminServer is a running admin endpoint: /metrics (Prometheus text, or
// JSON with ?format=json), /healthz, /readyz, /statusz, /traces, /tasks,
// and optionally /debug/pprof/.
type AdminServer struct {
	ln      net.Listener
	srv     *http.Server
	started time.Time
}

// adminHeaders stamps every admin response: probe and scrape output
// must never be served stale by an intermediary, and each body names
// its content type explicitly.
func adminHeaders(w http.ResponseWriter, contentType string) {
	h := w.Header()
	h.Set("Cache-Control", "no-store")
	h.Set("Content-Type", contentType)
}

const (
	ctJSON = "application/json; charset=utf-8"
	ctText = "text/plain; charset=utf-8"
)

// ServeAdmin binds the admin endpoint and serves it on a background
// goroutine until Close.
func ServeAdmin(cfg AdminConfig) (*AdminServer, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("obs: empty admin address")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = Default()
	}
	a := &AdminServer{started: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			adminHeaders(w, ctJSON)
			_ = json.NewEncoder(w).Encode(reg.Snapshot())
			return
		}
		adminHeaders(w, "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	probe := func(check func() error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			adminHeaders(w, ctText)
			if check != nil {
				if err := check(); err != nil {
					http.Error(w, err.Error(), http.StatusServiceUnavailable)
					return
				}
			}
			fmt.Fprintln(w, "ok")
		}
	}
	mux.HandleFunc("/healthz", probe(cfg.Health))
	mux.HandleFunc("/readyz", probe(cfg.Ready))
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{
			"uptime_seconds": time.Since(a.started).Seconds(),
			"go_version":     runtime.Version(),
			"goroutines":     runtime.NumGoroutine(),
		}
		if cfg.Status != nil {
			body["status"] = cfg.Status()
		}
		adminHeaders(w, ctJSON)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		adminHeaders(w, ctJSON)
		recent := cfg.Tracer.Recent()
		if recent == nil {
			recent = []TraceRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(recent)
	})
	mux.HandleFunc("/tasks", func(w http.ResponseWriter, r *http.Request) {
		adminHeaders(w, ctJSON)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id := r.URL.Query().Get("id"); id != "" {
			tl, ok := cfg.Timeline.Get(id)
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				_ = enc.Encode(map[string]string{"error": "unknown task " + id})
				return
			}
			_ = enc.Encode(tl)
			return
		}
		ids := cfg.Timeline.Tasks()
		if ids == nil {
			ids = []string{}
		}
		_ = enc.Encode(map[string]any{"tasks": ids})
	})
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", cfg.Addr, err)
	}
	a.ln = ln
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = a.srv.Serve(ln) }()
	return a, nil
}

// Addr returns the bound listen address.
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close stops the admin server immediately.
func (a *AdminServer) Close() error { return a.srv.Close() }
