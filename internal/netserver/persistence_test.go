package netserver

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"senseaid/internal/cas"
	"senseaid/internal/core"
	"senseaid/internal/faultconn"
	"senseaid/internal/geo"
	"senseaid/internal/obs"
	"senseaid/internal/persist"
	"senseaid/internal/power"
	"senseaid/internal/sensors"
	"senseaid/internal/wire"
)

// startDurable brings up a server persisting to dir. Periodic snapshots
// are disabled so recovery leans on the journal — the hard path.
func startDurable(t *testing.T, dir string, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Addr:             "127.0.0.1:0",
		TickPeriod:       20 * time.Millisecond,
		StateDir:         dir,
		SnapshotInterval: -1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Listen(cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// durableSpec is a campaign that outlives a mid-test crash: absolute
// window so a resubmit carries identical bytes, client task ID so the
// resubmit deduplicates.
func durableSpec(clientID string) wire.TaskSpec {
	now := time.Now()
	return wire.TaskSpec{
		ClientTaskID:   clientID,
		Sensor:         sensors.Barometer,
		SamplingPeriod: 150 * time.Millisecond,
		Start:          now,
		End:            now.Add(30 * time.Second),
		Center:         geo.CSDepartment,
		AreaRadiusM:    500,
		SpatialDensity: 1,
	}
}

// collectingCAS dials a CAS, subscribes, and submits the spec.
func collectingCAS(t *testing.T, addr string, spec wire.TaskSpec) (*cas.CAS, string, func() int) {
	t.Helper()
	app, err := cas.Dial(addr)
	if err != nil {
		t.Fatalf("cas.Dial: %v", err)
	}
	t.Cleanup(func() { _ = app.Close() })
	var mu sync.Mutex
	count := 0
	if err := app.ReceiveSensedData(func(wire.SensedData) {
		mu.Lock()
		count++
		mu.Unlock()
	}); err != nil {
		t.Fatalf("ReceiveSensedData: %v", err)
	}
	id, err := app.Task(spec)
	if err != nil {
		t.Fatalf("Task: %v", err)
	}
	return app, id, func() int {
		mu.Lock()
		defer mu.Unlock()
		return count
	}
}

// TestCrashRecoveryStateFidelity kills a server mid-campaign (no final
// snapshot, no journal sync) and asserts the restarted server rebuilds
// the exact persisted state: tasks, queues, pending dispatches with
// their deadlines, device records, reputation, and stats. The successor
// gets an hour-long tick so nothing reschedules between recovery and
// the comparison.
func TestCrashRecoveryStateFidelity(t *testing.T) {
	dir := t.TempDir()
	s1 := startDurable(t, dir, nil)
	if got := s1.Recovery().Outcome; got != "fresh" {
		t.Fatalf("first boot outcome = %q, want fresh", got)
	}
	autoDevice(t, s1.Addr(), "dev-fid")
	_, _, readings := collectingCAS(t, s1.Addr(), durableSpec("fid-1"))
	waitFor(t, 5*time.Second, "first reading", func() bool { return readings() >= 1 })
	if err := s1.closeAbrupt(); err != nil {
		t.Fatalf("closeAbrupt: %v", err)
	}
	// The core outlives its transport; this is the exact state the dead
	// process held (every journal record was emitted before closeAbrupt
	// returned).
	want := s1.Orchestrator().(*core.Server).Snapshot()

	s2 := startDurable(t, dir, func(c *Config) { c.TickPeriod = time.Hour })
	rec := s2.Recovery()
	if rec.Outcome != "restored" || rec.Restarts != 1 {
		t.Fatalf("recovery = %+v, want restored with 1 restart", rec)
	}
	if rec.Replayed == 0 {
		t.Fatalf("recovery replayed no journal records: %+v", rec)
	}
	got := s2.Orchestrator().(*core.Server).Snapshot()

	// Compare the persisted forms: marshaling strips the monotonic clock
	// readings live time.Time values carry and disk round-trips lose.
	wantJSON, err := json.MarshalIndent(want, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.MarshalIndent(got, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("recovered state differs from crashed state:\nbefore crash:\n%s\nafter recovery:\n%s", wantJSON, gotJSON)
	}
	if len(want.Pending) == 0 && want.Stats.ReadingsAccepted == 0 {
		t.Fatalf("campaign produced no persistent evidence (pending=%d readings=%d); test proved nothing",
			len(want.Pending), want.Stats.ReadingsAccepted)
	}

	if v := metricValue(s2.Metrics(), "senseaid_restarts_total", nil); v != 1 {
		t.Fatalf("senseaid_restarts_total = %v, want 1", v)
	}
	if v := metricValue(s2.Metrics(), "senseaid_recovery_last_unix", nil); v <= 0 {
		t.Fatalf("senseaid_recovery_last_unix = %v, want > 0", v)
	}
	if v := metricValue(s2.Metrics(), "senseaid_recoveries_total", obs.Labels{"outcome": "restored"}); v != 1 {
		t.Fatalf(`senseaid_recoveries_total{outcome="restored"} = %v, want 1`, v)
	}
}

// TestCrashRecoveryCampaignResumes is the operator story: kill -9 mid
// campaign, restart against the same state directory, and the campaign
// finishes — the CAS reclaims its task by resubmitting the same client
// task ID (no duplicate task is scheduled) and readings keep flowing
// under the original task ID.
func TestCrashRecoveryCampaignResumes(t *testing.T) {
	dir := t.TempDir()
	spec := durableSpec("resume-1")

	s1 := startDurable(t, dir, nil)
	autoDevice(t, s1.Addr(), "dev-res")
	_, taskID, readings := collectingCAS(t, s1.Addr(), spec)
	waitFor(t, 5*time.Second, "pre-crash reading", func() bool { return readings() >= 1 })
	preStats := s1.Stats()
	if err := s1.closeAbrupt(); err != nil {
		t.Fatalf("closeAbrupt: %v", err)
	}

	s2 := startDurable(t, dir, nil)
	post := s2.Stats()
	if post.TasksSubmitted != preStats.TasksSubmitted {
		t.Fatalf("TasksSubmitted across restart: %d -> %d", preStats.TasksSubmitted, post.TasksSubmitted)
	}
	if post.ReadingsAccepted < preStats.ReadingsAccepted {
		t.Fatalf("ReadingsAccepted went backwards: %d -> %d", preStats.ReadingsAccepted, post.ReadingsAccepted)
	}
	if n := s2.Status().CoreTasks; n != 1 {
		t.Fatalf("restored core tasks = %d, want 1", n)
	}

	// The CAS retries its submission on the new connection; the server
	// must return the original task, not mint a twin.
	autoDevice(t, s2.Addr(), "dev-res")
	_, taskID2, readings2 := collectingCAS(t, s2.Addr(), spec)
	if taskID2 != taskID {
		t.Fatalf("resubmit returned %q, want original %q", taskID2, taskID)
	}
	if got := s2.Stats().TasksSubmitted; got != preStats.TasksSubmitted {
		t.Fatalf("resubmit created a duplicate: TasksSubmitted = %d, want %d", got, preStats.TasksSubmitted)
	}
	waitFor(t, 5*time.Second, "post-restart reading", func() bool { return readings2() >= 1 })
}

// TestCrashRecoverySharded runs the kill-9 flow on the sharded topology:
// per-region state files, per-shard recovery, and the routing indexes
// rebuilt so post-restart traffic still reaches the right shard.
func TestCrashRecoverySharded(t *testing.T) {
	dir := t.TempDir()
	sharded := func(c *Config) { c.Regions = testRegions() }
	spec := durableSpec("shard-1")

	s1 := startDurable(t, dir, sharded)
	autoDevice(t, s1.Addr(), "dev-shard")
	_, taskID, readings := collectingCAS(t, s1.Addr(), spec)
	if !strings.HasPrefix(taskID, "west/") {
		t.Fatalf("task ID %q not owned by west", taskID)
	}
	waitFor(t, 5*time.Second, "pre-crash reading", func() bool { return readings() >= 1 })
	if err := s1.closeAbrupt(); err != nil {
		t.Fatalf("closeAbrupt: %v", err)
	}
	for _, name := range []string{"west.snap", "east.snap"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("per-region state file %s: %v", name, err)
		}
	}

	s2 := startDurable(t, dir, sharded)
	rec := s2.Recovery()
	if rec.Outcome != "restored" || rec.Restarts != 1 {
		t.Fatalf("recovery = %+v, want restored with 1 restart", rec)
	}
	if n := s2.Status().CoreTasks; n != 1 {
		t.Fatalf("restored core tasks = %d, want 1", n)
	}

	// Routing survived: the restored device record is findable (prefs
	// route by device home) and a reclaimed task keeps flowing.
	if err := s2.Orchestrator().UpdateDevicePrefs("dev-shard", power.DefaultBudget()); err != nil {
		t.Fatalf("prefs after recovery (device routing lost?): %v", err)
	}
	autoDevice(t, s2.Addr(), "dev-shard")
	_, taskID2, readings2 := collectingCAS(t, s2.Addr(), spec)
	if taskID2 != taskID {
		t.Fatalf("resubmit returned %q, want original %q", taskID2, taskID)
	}
	waitFor(t, 5*time.Second, "post-restart reading", func() bool { return readings2() >= 1 })
}

// TestCorruptStateRefused flips bytes in the snapshot and asserts the
// default posture: the server refuses to start rather than silently
// serving from damaged state, and -state-recover moves the files aside
// (keeping them for post-mortem) and starts fresh.
func TestCorruptStateRefused(t *testing.T) {
	dir := t.TempDir()
	s1 := startDurable(t, dir, nil)
	_, _, _ = collectingCAS(t, s1.Addr(), durableSpec("corrupt-1"))
	if err := s1.Close(); err != nil { // graceful: snapshot written
		t.Fatalf("Close: %v", err)
	}

	snapPath := filepath.Join(dir, "core.snap")
	if err := os.WriteFile(snapPath, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err := Listen(Config{Addr: "127.0.0.1:0", StateDir: dir})
	if err == nil {
		t.Fatal("Listen accepted a corrupt snapshot")
	}
	if !persist.IsCorrupt(err) {
		t.Fatalf("error does not identify corruption: %v", err)
	}
	if !strings.Contains(err.Error(), "state-recover") {
		t.Fatalf("error does not point at the recovery flag: %v", err)
	}

	s2 := startDurable(t, dir, func(c *Config) { c.StateRecover = true })
	rec := s2.Recovery()
	if rec.Outcome != "reset" {
		t.Fatalf("recovery outcome = %q, want reset", rec.Outcome)
	}
	if s2.Status().CoreTasks != 0 {
		t.Fatalf("fresh start after reset still has tasks")
	}
	if _, err := os.Stat(snapPath + ".corrupt"); err != nil {
		t.Fatalf("damaged snapshot not preserved for post-mortem: %v", err)
	}
	if v := metricValue(s2.Metrics(), "senseaid_recoveries_total", obs.Labels{"outcome": "reset"}); v != 1 {
		t.Fatalf(`senseaid_recoveries_total{outcome="reset"} = %v, want 1`, v)
	}
}

// TestTornJournalTailRecovered crashes, then corrupts the journal's
// tail (the artifact of a crash mid-append) and asserts recovery
// replays the intact prefix instead of refusing or panicking.
func TestTornJournalTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s1 := startDurable(t, dir, nil)
	autoDevice(t, s1.Addr(), "dev-torn")
	_, _, readings := collectingCAS(t, s1.Addr(), durableSpec("torn-1"))
	waitFor(t, 5*time.Second, "reading", func() bool { return readings() >= 1 })
	if err := s1.closeAbrupt(); err != nil {
		t.Fatalf("closeAbrupt: %v", err)
	}

	// Tear the newest journal epoch mid-record.
	entries, err := filepath.Glob(filepath.Join(dir, "core.journal.*"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no journal files: %v (%v)", entries, err)
	}
	tail := entries[len(entries)-1]
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	s2 := startDurable(t, dir, nil)
	rec := s2.Recovery()
	if rec.Outcome != "restored" || rec.Replayed == 0 {
		t.Fatalf("recovery = %+v, want restored with replayed records", rec)
	}
	if v := metricValue(s2.Metrics(), "senseaid_journal_truncated_bytes_total", nil); v != 3 {
		t.Fatalf("truncated bytes metric = %v, want 3", v)
	}
}

// TestCrashRestartSoak is the randomized crash soak: repeated abrupt
// kills at varying points mid-traffic, with fault-injected connections,
// against one state directory. Every restart must recover (never
// refuse, never panic), and the client-task-ID dedupe must hold no
// matter where the crash landed. Run under -race in CI.
func TestCrashRestartSoak(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	iterations := 6
	if testing.Short() {
		iterations = 3
	}
	spec := durableSpec("soak-1")
	taskSubmits := 0
	for i := 0; i < iterations; i++ {
		seed := int64(i)
		s := startDurable(t, dir, func(c *Config) {
			c.WrapConn = func(nc net.Conn) net.Conn {
				return faultconn.Wrap(nc, faultconn.Policy{Seed: seed, DropProb: 0.01})
			}
			// Odd iterations also snapshot aggressively, so crashes land
			// on every mix of snapshot-plus-journal-tail.
			if i%2 == 1 {
				c.SnapshotInterval = 30 * time.Millisecond
			}
		})
		rec := s.Recovery()
		if i == 0 {
			if rec.Outcome != "fresh" {
				t.Fatalf("iteration 0 outcome = %q", rec.Outcome)
			}
		} else if rec.Outcome != "restored" || rec.Restarts != i {
			t.Fatalf("iteration %d recovery = %+v, want restored with %d restarts", i, rec, i)
		}

		// Best-effort traffic: the fault policy may kill any of these
		// connections, and that is the point — the crash must be safe at
		// whatever point the traffic reached.
		if c, err := dialQuietDevice(s.Addr(), fmt.Sprintf("soak-dev-%d", i%2)); err == nil {
			defer func() { _ = c.Close() }()
		}
		if app, err := cas.Dial(s.Addr()); err == nil {
			if _, err := app.Task(spec); err == nil {
				taskSubmits++
			}
			_ = app.Close()
		}
		time.Sleep(time.Duration(20+rng.Intn(150)) * time.Millisecond)
		if err := s.closeAbrupt(); err != nil {
			t.Fatalf("iteration %d closeAbrupt: %v", i, err)
		}
		if n := s.Orchestrator().Stats().TasksSubmitted; n > 1 {
			t.Fatalf("iteration %d: %d tasks from %d submits of one client task ID", i, n, taskSubmits)
		}
	}
	// The directory must still boot a healthy server.
	final := startDurable(t, dir, nil)
	if final.Recovery().Restarts != iterations {
		t.Fatalf("final restarts = %d, want %d", final.Recovery().Restarts, iterations)
	}
	if n := final.Stats().TasksSubmitted; taskSubmits > 0 && n != 1 {
		t.Fatalf("final TasksSubmitted = %d after %d idempotent submits", n, taskSubmits)
	}
}

// dialQuietDevice registers a device that never answers schedules —
// soak traffic that exercises dispatch failures and misses too.
func dialQuietDevice(addr, id string) (net.Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	rc, err := wire.NewRPCConn(nc, wire.RoleDevice, nil)
	if err != nil {
		_ = nc.Close()
		return nil, err
	}
	if _, err := rc.Call(wire.TypeRegister, wire.Register{
		DeviceID:   id,
		Position:   geo.CSDepartment,
		BatteryPct: 80,
		Sensors:    []sensors.Type{sensors.Barometer},
		Budget:     power.DefaultBudget(),
	}); err != nil {
		_ = rc.Close()
		return nil, err
	}
	return nc, nil
}

// recoveryBudgetSeconds bounds boot-time recovery for the bench's 10k
// journal records. Replay is in-memory map work; even with the
// post-recovery snapshot commit it finishes in well under a second on
// any hardware CI uses.
const recoveryBudgetSeconds = 2.0

// recoveryBenchRecord is the BENCH_recovery.json payload.
type recoveryBenchRecord struct {
	Records         int     `json:"records"`
	Replayed        int     `json:"replayed"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	BudgetSeconds   float64 `json:"budget_seconds"`
}

// TestRecordRecoveryBench measures boot-time recovery over a 10k-record
// journal and writes BENCH_recovery.json so the recovery-time
// trajectory is recorded in CI. Gated on SENSEAID_BENCH_OUT (ci.sh sets
// it); FAILS when recovery exceeds its wall-clock budget.
func TestRecordRecoveryBench(t *testing.T) {
	out := os.Getenv("SENSEAID_BENCH_OUT")
	if out == "" {
		t.Skip("SENSEAID_BENCH_OUT not set; benchmark recording runs from ci.sh")
	}
	dir := t.TempDir()
	store, err := persist.Open(dir, "core")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Commit(persistedState{}); err != nil {
		t.Fatal(err)
	}
	const records = 10_000
	dev := core.DeviceState{
		ID: "bench-dev", Position: geo.CSDepartment, BatteryPct: 90,
		LastComm: time.Now(), Sensors: []sensors.Type{sensors.Barometer},
		Budget: power.DefaultBudget(), Responsive: true, Reliability: 1,
	}
	if err := store.Append(core.JournalRecord{Seq: 1, Op: "register", Device: &dev}); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= records; i++ {
		if err := store.Append(core.JournalRecord{Seq: uint64(i), Op: "energy", DeviceID: "bench-dev", Joules: 0.01}); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	s, err := Listen(Config{Addr: "127.0.0.1:0", StateDir: dir, SnapshotInterval: -1, TickPeriod: time.Hour})
	elapsed := time.Since(start).Seconds()
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer func() { _ = s.Close() }()
	rec := s.Recovery()
	if rec.Replayed != records {
		t.Fatalf("replayed %d of %d records", rec.Replayed, records)
	}

	payload := recoveryBenchRecord{
		Records:         records,
		Replayed:        rec.Replayed,
		RecoverySeconds: elapsed,
		BudgetSeconds:   recoveryBudgetSeconds,
	}
	blob, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recovered %d records in %.3fs -> %s", records, elapsed, out)
	if elapsed > recoveryBudgetSeconds {
		t.Fatalf("recovery took %.3fs for %d records, budget %.1fs", elapsed, records, recoveryBudgetSeconds)
	}
}
