// Package faultconn wraps net.Conn with seeded, policy-driven fault
// injection: connections that drop after a set number of operations,
// add latency, fail writes without closing, or stall mid-stream the way
// a phone crossing a dead zone does. The wire, netserver, and client
// test suites use it to prove the session-resilience layer (reconnect,
// deadlines, dispatch-failure recovery) against deterministic chaos
// instead of waiting for a real cellular edge to misbehave.
//
// Stalls are deadline-aware: a stalled Read or Write honours the
// deadline set via SetReadDeadline/SetWriteDeadline and returns a
// net.Error with Timeout() == true when it expires, exactly as a stuck
// kernel socket would. That lets deadline-hygiene tests run in
// milliseconds rather than filling real TCP buffers.
package faultconn

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Policy says how a wrapped connection misbehaves. The zero value
// injects nothing. Counters count operations on the wrapped connection
// starting at 1, so DropAfterWrites: 3 means the third write fails.
type Policy struct {
	// Seed drives DropProb decisions; connections with the same seed
	// and operation sequence fail identically.
	Seed int64
	// DropProb is a per-operation probability (0..1) of killing the
	// connection: the operation fails and the underlying conn closes.
	DropProb float64
	// DropAfterWrites kills the connection on the Nth write (0 = never).
	DropAfterWrites int
	// DropAfterReads kills the connection on the Nth read (0 = never).
	DropAfterReads int
	// FailAfterWrites makes the Nth and later writes return an error
	// without closing the connection (a broken pipe whose read side
	// still drains), 0 = never.
	FailAfterWrites int
	// StallAfterWrites makes the Nth and later writes block until the
	// write deadline expires or the connection closes (0 = never).
	StallAfterWrites int
	// StallReads makes every read block until the read deadline expires
	// or the connection closes — a peer that connects and says nothing.
	StallReads bool
	// PartitionAfterWrites makes the Nth and later writes report success
	// while silently discarding the bytes; reads keep flowing (0 = never).
	// This is the asymmetric partition: the peer's traffic arrives, ours
	// black-holes, and nothing errors — only deadlines notice.
	PartitionAfterWrites int
	// CorruptProb is a per-write probability (0..1) of flipping one
	// random byte of the payload before it hits the socket — a radio
	// link whose integrity checks are lying. Which byte flips is drawn
	// from Seed, so corrupted streams replay identically.
	CorruptProb float64
	// Delay is added before every read and write.
	Delay time.Duration
}

// timeoutError satisfies net.Error with Timeout() == true, mirroring
// what a real socket returns past its deadline.
type timeoutError struct{ op string }

func (e timeoutError) Error() string   { return "faultconn: " + e.op + " deadline exceeded (stalled)" }
func (e timeoutError) Timeout() bool   { return true }
func (e timeoutError) Temporary() bool { return true }

var _ net.Error = timeoutError{}

// Conn is a net.Conn with fault injection applied per its Policy.
type Conn struct {
	net.Conn
	policy Policy

	mu            sync.Mutex
	rng           *rand.Rand
	reads, writes int
	partitioned   int
	killed        bool
	readDeadline  time.Time
	writeDeadline time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

// Wrap applies a fault policy to an established connection.
func Wrap(nc net.Conn, p Policy) *Conn {
	return &Conn{
		Conn:   nc,
		policy: p,
		rng:    rand.New(rand.NewSource(p.Seed)),
		closed: make(chan struct{}),
	}
}

// Dial opens a TCP connection to addr and wraps it.
func Dial(addr string, p Policy) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return Wrap(nc, p), nil
}

// kill closes the underlying connection and marks the wrapper dead.
// Called with c.mu held.
func (c *Conn) killLocked() {
	c.killed = true
	c.closeOnce.Do(func() { close(c.closed) })
	_ = c.Conn.Close()
}

// stall blocks until the given deadline passes (timeout error), the
// connection closes, or forever when no deadline is set.
func (c *Conn) stall(op string, deadline time.Time) error {
	var timer <-chan time.Time
	if !deadline.IsZero() {
		wait := time.Until(deadline)
		if wait <= 0 {
			return timeoutError{op: op}
		}
		t := time.NewTimer(wait)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-timer:
		return timeoutError{op: op}
	case <-c.closed:
		return fmt.Errorf("faultconn: connection closed during stalled %s", op)
	}
}

func (c *Conn) Read(b []byte) (int, error) {
	if c.policy.Delay > 0 {
		time.Sleep(c.policy.Delay)
	}
	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return 0, fmt.Errorf("faultconn: read on dropped connection")
	}
	c.reads++
	n := c.reads
	deadline := c.readDeadline
	if c.policy.DropAfterReads > 0 && n >= c.policy.DropAfterReads {
		c.killLocked()
		c.mu.Unlock()
		return 0, fmt.Errorf("faultconn: connection dropped at read %d", n)
	}
	if c.policy.DropProb > 0 && c.rng.Float64() < c.policy.DropProb {
		c.killLocked()
		c.mu.Unlock()
		return 0, fmt.Errorf("faultconn: connection dropped (probabilistic, read %d)", n)
	}
	c.mu.Unlock()
	if c.policy.StallReads {
		return 0, c.stall("read", deadline)
	}
	return c.Conn.Read(b)
}

func (c *Conn) Write(b []byte) (int, error) {
	if c.policy.Delay > 0 {
		time.Sleep(c.policy.Delay)
	}
	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return 0, fmt.Errorf("faultconn: write on dropped connection")
	}
	c.writes++
	n := c.writes
	deadline := c.writeDeadline
	if c.policy.DropAfterWrites > 0 && n >= c.policy.DropAfterWrites {
		c.killLocked()
		c.mu.Unlock()
		return 0, fmt.Errorf("faultconn: connection dropped at write %d", n)
	}
	if c.policy.DropProb > 0 && c.rng.Float64() < c.policy.DropProb {
		c.killLocked()
		c.mu.Unlock()
		return 0, fmt.Errorf("faultconn: connection dropped (probabilistic, write %d)", n)
	}
	failed := c.policy.FailAfterWrites > 0 && n >= c.policy.FailAfterWrites
	stalled := c.policy.StallAfterWrites > 0 && n >= c.policy.StallAfterWrites
	partitioned := c.policy.PartitionAfterWrites > 0 && n >= c.policy.PartitionAfterWrites
	corrupt := -1
	if c.policy.CorruptProb > 0 && len(b) > 0 && c.rng.Float64() < c.policy.CorruptProb {
		corrupt = c.rng.Intn(len(b))
	}
	if partitioned {
		c.partitioned++
	}
	c.mu.Unlock()
	if failed {
		return 0, fmt.Errorf("faultconn: write %d failed by policy", n)
	}
	if stalled {
		return 0, c.stall("write", deadline)
	}
	if partitioned {
		// Report success without transmitting: the caller believes the
		// bytes went out, exactly like a black-holed route.
		return len(b), nil
	}
	if corrupt >= 0 {
		mangled := make([]byte, len(b))
		copy(mangled, b)
		mangled[corrupt] ^= 0xFF
		return c.Conn.Write(mangled)
	}
	return c.Conn.Write(b)
}

// Close closes the wrapper and the underlying connection.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// SetDeadline mirrors net.Conn, tracking the deadlines so stalled
// operations can expire like real socket operations do.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// SetReadDeadline mirrors net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// SetWriteDeadline mirrors net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

// Writes reports how many writes the policy has seen.
func (c *Conn) Writes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// Reads reports how many reads the policy has seen.
func (c *Conn) Reads() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reads
}

// BlackholedWrites reports how many writes the partition policy
// swallowed while claiming success.
func (c *Conn) BlackholedWrites() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.partitioned
}

// Dropped reports whether the policy killed the connection.
func (c *Conn) Dropped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}
