package faultconn

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// pipe returns a wrapped client end talking to a raw server end over a
// real TCP loopback socket.
func pipe(t *testing.T, p Policy) (*Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer func() { _ = ln.Close() }()
	type accepted struct {
		nc  net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		nc, err := ln.Accept()
		ch <- accepted{nc, err}
	}()
	client, err := Dial(ln.Addr().String(), p)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	a := <-ch
	if a.err != nil {
		t.Fatalf("accept: %v", a.err)
	}
	t.Cleanup(func() { _ = a.nc.Close() })
	return client, a.nc
}

func TestPassThrough(t *testing.T) {
	c, srv := pipe(t, Policy{})
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := srv.Read(buf); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if string(buf) != "ping" {
		t.Fatalf("got %q", buf)
	}
}

func TestDropAfterWrites(t *testing.T) {
	c, _ := pipe(t, Policy{DropAfterWrites: 2})
	if _, err := c.Write([]byte("one")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := c.Write([]byte("two")); err == nil {
		t.Fatal("second write survived DropAfterWrites: 2")
	}
	if !c.Dropped() {
		t.Fatal("connection not marked dropped")
	}
	if _, err := c.Write([]byte("three")); err == nil {
		t.Fatal("write succeeded on dropped connection")
	}
}

func TestDropAfterReads(t *testing.T) {
	c, srv := pipe(t, Policy{DropAfterReads: 1})
	if _, err := srv.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("first read survived DropAfterReads: 1")
	}
}

func TestFailAfterWritesKeepsReads(t *testing.T) {
	c, srv := pipe(t, Policy{FailAfterWrites: 1})
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write survived FailAfterWrites: 1")
	}
	// The read side still works: a broken pipe, not a closed socket.
	if _, err := srv.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("read after failed write: %v", err)
	}
}

func TestStalledWriteHonoursDeadline(t *testing.T) {
	c, _ := pipe(t, Policy{StallAfterWrites: 1})
	if err := c.SetWriteDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := c.Write([]byte("x"))
	if err == nil {
		t.Fatal("stalled write returned nil")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("stalled write error %v is not a timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stalled write took %v, deadline ignored", elapsed)
	}
}

func TestStalledReadUnblocksOnClose(t *testing.T) {
	c, _ := pipe(t, Policy{StallReads: true})
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = c.Close()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "closed") {
			t.Fatalf("stalled read returned %v, want closed error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled read never unblocked on close")
	}
}

func TestSeededDropIsDeterministic(t *testing.T) {
	run := func() int {
		c, srv := pipe(t, Policy{Seed: 42, DropProb: 0.3})
		go func() {
			buf := make([]byte, 16)
			for {
				if _, err := srv.Read(buf); err != nil {
					return
				}
			}
		}()
		n := 0
		for i := 0; i < 100; i++ {
			if _, err := c.Write([]byte("payload")); err != nil {
				break
			}
			n++
		}
		return n
	}
	first := run()
	if first >= 100 {
		t.Fatalf("DropProb 0.3 never fired in 100 writes")
	}
	for i := 0; i < 3; i++ {
		if again := run(); again != first {
			t.Fatalf("same seed diverged: %d vs %d writes before drop", first, again)
		}
	}
}
