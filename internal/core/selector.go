package core

import (
	"fmt"
	"slices"
	"strings"
	"time"
)

// SelectorConfig holds the scoring weights and hard cutoffs of the device
// selector. The paper uses a linear combination
//
//	Score(i) = alpha*E_i + beta*U_i + gamma*(100-CBL_i) + phi*TTL_i
//
// where lower scores are preferred, plus three hard cutoffs: a cap on how
// often a device may be picked, the user's energy budget, and the user's
// critical battery level.
type SelectorConfig struct {
	// Alpha weighs E_i, the crowdsensing energy (J) already spent.
	Alpha float64
	// Beta weighs U_i, the number of prior selections.
	Beta float64
	// Gamma weighs (100 - CBL_i), the battery deficit.
	Gamma float64
	// Phi weighs TTL_i, seconds since the last radio communication. A
	// small TTL means the radio is likely still in its tail, so the
	// sensed value can ride the tail for free.
	Phi float64
	// Rho weighs (1 - Reliability_i), the data-quality reputation
	// deficit — the paper's pointer that reliable-data work "can be
	// incorporated as another factor in our device selector algorithm".
	// Zero disables the factor.
	Rho float64
	// MaxUses is the hard cutoff on selections per accounting window.
	MaxUses int
	// MinReliability is a hard cutoff: devices scoring below it are
	// disqualified. Zero disables the cutoff.
	MinReliability float64
}

// DefaultSelectorConfig returns weights that make one selection weigh as
// much as ~25 J of spent energy or ~20 battery points, with TTL as the
// tiebreaker among otherwise-equal devices: fairness first (the paper's
// Figure 9 rotation), then opportunism.
func DefaultSelectorConfig() SelectorConfig {
	return SelectorConfig{
		Alpha:   0.04,
		Beta:    1.0,
		Gamma:   0.05,
		Phi:     0.0005,
		MaxUses: 1_000,
	}
}

// Validate checks the weights are usable.
func (c SelectorConfig) Validate() error {
	if c.Alpha < 0 || c.Beta < 0 || c.Gamma < 0 || c.Phi < 0 || c.Rho < 0 {
		return fmt.Errorf("core: selector weights must be non-negative: %+v", c)
	}
	if c.MaxUses <= 0 {
		return fmt.Errorf("core: selector MaxUses must be positive, got %d", c.MaxUses)
	}
	if c.MinReliability < 0 || c.MinReliability > 1 {
		return fmt.Errorf("core: MinReliability %v out of [0,1]", c.MinReliability)
	}
	return nil
}

// Selector ranks and picks devices for requests.
type Selector struct {
	cfg SelectorConfig
}

// NewSelector builds a selector.
func NewSelector(cfg SelectorConfig) (*Selector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Selector{cfg: cfg}, nil
}

// TTLCapSeconds bounds the selector's TTL_i term. TTL measures how long
// since the radio last talked — beyond an hour there is certainly no
// tail to ride, and letting the term grow unbounded would let staleness
// swamp the fairness terms (a week of silence would outweigh hundreds of
// selections). A device that has never communicated (zero LastComm) has
// no tail by definition and takes the full cap rather than the ~50-year
// TTL the raw subtraction would produce.
const TTLCapSeconds = 3600

// Score computes the paper's scoring function for one device at an
// instant; lower is better.
func (s *Selector) Score(d DeviceState, now time.Time) float64 {
	var ttl float64
	if d.LastComm.IsZero() {
		// Never communicated: no tail, worst TTL — explicitly, instead of
		// the zero-value time dominating every other factor.
		ttl = TTLCapSeconds
	} else {
		ttl = now.Sub(d.LastComm).Seconds()
		if ttl < 0 {
			ttl = 0
		}
		if ttl > TTLCapSeconds {
			ttl = TTLCapSeconds
		}
	}
	return s.cfg.Alpha*d.EnergySpentJ +
		s.cfg.Beta*float64(d.TimesUsed) +
		s.cfg.Gamma*(100-d.BatteryPct) +
		s.cfg.Phi*ttl +
		s.cfg.Rho*(1-d.Reliability)
}

// DisqualifyReason explains why a device is not qualified for a request.
type DisqualifyReason string

// Reasons a device fails qualification — the paper's two headline causes
// (out of region, missing/invalid sensor) plus the hard cutoffs.
const (
	ReasonOutOfRegion     DisqualifyReason = "out of task region"
	ReasonNoSensor        DisqualifyReason = "required sensor missing"
	ReasonWrongDeviceType DisqualifyReason = "device type mismatch"
	ReasonOverBudget      DisqualifyReason = "energy budget exhausted"
	ReasonLowBattery      DisqualifyReason = "battery below critical level"
	ReasonOverused        DisqualifyReason = "selection cap reached"
	ReasonUnresponsive    DisqualifyReason = "device unresponsive"
	ReasonUnreliable      DisqualifyReason = "reliability below minimum"
)

// disqualify returns the reason d is ineligible for the request, or ""
// when it qualifies. It is the single source of truth behind Qualify,
// QualifyAppend, and CountQualified.
func (s *Selector) disqualify(req Request, d *DeviceState) DisqualifyReason {
	switch {
	case !d.Responsive:
		return ReasonUnresponsive
	case !req.Task.Area.Contains(d.Position):
		return ReasonOutOfRegion
	case !d.HasSensor(req.Task.Sensor):
		return ReasonNoSensor
	case req.Task.DeviceType != "" && d.DeviceType != req.Task.DeviceType:
		return ReasonWrongDeviceType
	case d.TimesUsed >= s.cfg.MaxUses:
		return ReasonOverused
	case d.EnergySpentJ >= d.Budget.TotalJ:
		return ReasonOverBudget
	case d.BatteryPct <= d.Budget.CriticalBatteryPct:
		return ReasonLowBattery
	case s.cfg.MinReliability > 0 && d.Reliability < s.cfg.MinReliability:
		return ReasonUnreliable
	default:
		return ""
	}
}

// Qualify splits devices into those eligible for the request and, for the
// rest, the reason they were excluded. It allocates the reason map, so it
// suits diagnostics and one-off calls; the scheduling hot path uses
// QualifyAppend/CountQualified, which allocate nothing.
func (s *Selector) Qualify(req Request, devices []DeviceState) (qualified []DeviceState, excluded map[string]DisqualifyReason) {
	excluded = make(map[string]DisqualifyReason)
	for i := range devices {
		if r := s.disqualify(req, &devices[i]); r != "" {
			excluded[devices[i].ID] = r
		} else {
			qualified = append(qualified, devices[i])
		}
	}
	return qualified, excluded
}

// QualifyAppend appends the devices eligible for the request to dst and
// returns the extended slice. Unlike Qualify it records no exclusion
// reasons, so a reused dst makes the steady state allocation-free.
func (s *Selector) QualifyAppend(req Request, devices []DeviceState, dst []DeviceState) []DeviceState {
	for i := range devices {
		if s.disqualify(req, &devices[i]) == "" {
			dst = append(dst, devices[i])
		}
	}
	return dst
}

// CountQualified reports how many of devices are eligible for the
// request, allocating nothing (the wait-queue re-check only needs the
// count).
func (s *Selector) CountQualified(req Request, devices []DeviceState) int {
	n := 0
	for i := range devices {
		if s.disqualify(req, &devices[i]) == "" {
			n++
		}
	}
	return n
}

// ErrNotEnoughDevices reports an unsatisfiable request: fewer qualified
// devices than the task's spatial density.
type ErrNotEnoughDevices struct {
	Request   string
	Want, Got int
}

// Error implements error.
func (e *ErrNotEnoughDevices) Error() string {
	return fmt.Sprintf("core: request %s needs %d devices, only %d qualified", e.Request, e.Want, e.Got)
}

// scoredDevice pairs a candidate with its precomputed score so the sort
// evaluates Score once per device instead of once per comparison.
type scoredDevice struct {
	dev   DeviceState
	score float64
}

// SelectScratch holds the reusable buffers of the allocation-free
// selection path. A zero value is ready to use; reusing one across
// SelectFrom calls (the scheduler keeps one per server, under its
// scheduling lock) makes the steady state allocation-free. Not safe for
// concurrent use.
type SelectScratch struct {
	scored   []scoredDevice
	selected []DeviceState
}

// Select picks the request's spatial-density-many best devices from the
// qualified set (lowest score first; ties broken by device ID so runs are
// deterministic). It returns ErrNotEnoughDevices when n > N. The result
// is freshly allocated; the hot path uses SelectFrom with a reused
// scratch instead.
func (s *Selector) Select(req Request, devices []DeviceState, now time.Time) ([]DeviceState, error) {
	var sc SelectScratch
	sel, err := s.SelectFrom(req, devices, now, &sc)
	if err != nil {
		return nil, err
	}
	return slices.Clone(sel), nil
}

// SelectFrom is the allocation-conscious form of Select: candidates are
// qualified, scored once each, ranked (lowest score first, ties broken
// by device ID), and the top spatial-density-many returned. The result
// aliases the scratch buffers and is valid only until the next
// SelectFrom call with the same scratch; callers copy what they keep.
func (s *Selector) SelectFrom(req Request, candidates []DeviceState, now time.Time, sc *SelectScratch) ([]DeviceState, error) {
	sc.scored = sc.scored[:0]
	for i := range candidates {
		if s.disqualify(req, &candidates[i]) != "" {
			continue
		}
		sc.scored = append(sc.scored, scoredDevice{dev: candidates[i], score: s.Score(candidates[i], now)})
	}
	n := req.Task.SpatialDensity
	if n > len(sc.scored) {
		return nil, &ErrNotEnoughDevices{Request: req.ID(), Want: n, Got: len(sc.scored)}
	}
	slices.SortFunc(sc.scored, func(a, b scoredDevice) int {
		if a.score != b.score {
			if a.score < b.score {
				return -1
			}
			return 1
		}
		return strings.Compare(a.dev.ID, b.dev.ID)
	})
	sc.selected = sc.selected[:0]
	for i := 0; i < n; i++ {
		sc.selected = append(sc.selected, sc.scored[i].dev)
	}
	return sc.selected, nil
}
