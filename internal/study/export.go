package study

import (
	"encoding/json"
	"fmt"
)

// Report bundles the full evaluation for machine-readable export: every
// figure's data series plus Table 2, as produced by one seed.
type Report struct {
	Seed    int64             `json:"seed"`
	Devices int               `json:"devices_per_cohort"`
	Figure1 []SurveyBucket    `json:"figure1_survey"`
	Figure2 []Figure2Cell     `json:"figure2_app_case_study"`
	Figure6 Figure6Result     `json:"figure6_tail_timeline"`
	Exp1    *ExperimentResult `json:"experiment1"`
	Figure9 *Figure9Result    `json:"figure9_fairness"`
	Exp2    *ExperimentResult `json:"experiment2"`
	Exp3    *ExperimentResult `json:"experiment3"`
	Fig14   *Figure14Result   `json:"figure14_pcs_accuracy"`
	Table2  *Table2           `json:"table2"`
}

// BuildReport runs the complete evaluation.
func BuildReport(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		Seed:    cfg.Seed,
		Devices: cfg.Devices,
		Figure1: SurveyFigure1(),
		Figure2: RunFigure2(),
		Figure6: RunFigure6(),
	}
	var err error
	if r.Exp1, err = RunExperiment1(cfg); err != nil {
		return nil, fmt.Errorf("study: experiment 1: %w", err)
	}
	if r.Figure9, err = RunFigure9(cfg); err != nil {
		return nil, fmt.Errorf("study: figure 9: %w", err)
	}
	if r.Exp2, err = RunExperiment2(cfg); err != nil {
		return nil, fmt.Errorf("study: experiment 2: %w", err)
	}
	if r.Exp3, err = RunExperiment3(cfg); err != nil {
		return nil, fmt.Errorf("study: experiment 3: %w", err)
	}
	if r.Fig14, err = RunFigure14(cfg); err != nil {
		return nil, fmt.Errorf("study: figure 14: %w", err)
	}
	r.Table2 = BuildTable2(r.Exp1, r.Exp2, r.Exp3)
	return r, nil
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("study: marshal report: %w", err)
	}
	return out, nil
}
