package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("senseaid_uploads_total", "uploads", Labels{"path": "tail"}).Add(4)

	healthy := true
	a, err := ServeAdmin(AdminConfig{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Health: func() error {
			if !healthy {
				return fmt.Errorf("core wedged")
			}
			return nil
		},
		Status: func() any { return map[string]int{"devices": 3} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	base := "http://" + a.Addr()

	code, body := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, `senseaid_uploads_total{path="tail"} 4`) {
		t.Fatalf("/metrics missing series:\n%s", body)
	}
	if err := CheckText(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics output invalid: %v", err)
	}

	code, body = getBody(t, base+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json status %d", code)
	}
	var snap []FamilySnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("JSON metrics unparseable: %v\n%s", err, body)
	}
	if len(snap) != 1 || *snap[0].Series[0].Value != 4 {
		t.Fatalf("JSON snapshot = %+v", snap)
	}

	code, body = getBody(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	healthy = false
	code, body = getBody(t, base+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "core wedged") {
		t.Fatalf("unhealthy /healthz = %d %q", code, body)
	}

	code, body = getBody(t, base+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	var status map[string]any
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/statusz unparseable: %v", err)
	}
	if status["status"].(map[string]any)["devices"].(float64) != 3 {
		t.Fatalf("/statusz payload = %v", status)
	}
	if _, ok := status["uptime_seconds"]; !ok {
		t.Fatal("/statusz missing uptime")
	}
}

func TestAdminRequiresAddr(t *testing.T) {
	if _, err := ServeAdmin(AdminConfig{}); err == nil {
		t.Fatal("empty addr accepted")
	}
}

func getResp(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestAdminTracesTasksReadyAndHeaders(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerConfig{Registry: reg})
	tl := NewTimelineStore(0, 0)

	root := tr.StartTrace("submit", "")
	tr.StartSpan(root.Context(), "schedule", "west").Finish()
	root.Finish()
	tr.Complete(root.Context().Trace)
	tl.Note("task-1", "submitted", "", time.Now())
	tl.Bind("task-1", root.Context().Trace.String())

	ready := false
	a, err := ServeAdmin(AdminConfig{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Ready: func() error {
			if !ready {
				return fmt.Errorf("recovery in progress")
			}
			return nil
		},
		Tracer:   tr,
		Timeline: tl,
		Pprof:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	base := "http://" + a.Addr()

	// Every admin response is uncacheable and names its content type.
	for path, wantCT := range map[string]string{
		"/metrics": "text/plain; version=0.0.4; charset=utf-8",
		"/statusz": "application/json; charset=utf-8",
		"/traces":  "application/json; charset=utf-8",
		"/tasks":   "application/json; charset=utf-8",
		"/healthz": "text/plain; charset=utf-8",
	} {
		resp, _ := getResp(t, base+path)
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", path, cc)
		}
		if ct := resp.Header.Get("Content-Type"); ct != wantCT {
			t.Errorf("%s Content-Type = %q, want %q", path, ct, wantCT)
		}
	}

	// /readyz is 503 until the serving layer flips, while /healthz
	// (liveness) stays 200 throughout.
	resp, body := getResp(t, base+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "recovery in progress") {
		t.Fatalf("/readyz before ready = %d %q", resp.StatusCode, body)
	}
	if code, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz not 200 during recovery: %d", code)
	}
	ready = true
	if code, body := getBody(t, base+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/readyz after ready = %d %q", code, body)
	}

	// /traces returns the retained trace with its spans.
	_, body = getResp(t, base+"/traces")
	var traces []TraceRecord
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/traces unparseable: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].TraceID != root.Context().Trace.String() || !traces[0].Complete {
		t.Fatalf("/traces = %+v", traces)
	}

	// /tasks lists tasks; /tasks?id= returns one timeline; unknown is 404.
	_, body = getResp(t, base+"/tasks")
	if !strings.Contains(body, "task-1") {
		t.Fatalf("/tasks = %s", body)
	}
	resp, body = getResp(t, base+"/tasks?id=task-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/tasks?id= status %d", resp.StatusCode)
	}
	var timeline TaskTimeline
	if err := json.Unmarshal([]byte(body), &timeline); err != nil {
		t.Fatalf("/tasks?id= unparseable: %v", err)
	}
	if timeline.TraceID != root.Context().Trace.String() || len(timeline.Events) != 1 {
		t.Fatalf("timeline = %+v", timeline)
	}
	if resp, _ := getResp(t, base+"/tasks?id=nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown task status = %d", resp.StatusCode)
	}

	// pprof is mounted when enabled.
	if code, body := getBody(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d %q", code, body)
	}
}

func TestAdminPprofOffByDefault(t *testing.T) {
	a, err := ServeAdmin(AdminConfig{Addr: "127.0.0.1:0", Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	if code, _ := getBody(t, "http://"+a.Addr()+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without -pprof = %d, want 404", code)
	}
	// /traces and /tasks degrade gracefully with no tracer/timeline.
	if code, body := getBody(t, "http://"+a.Addr()+"/traces"); code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("/traces without tracer = %d %q", code, body)
	}
	if code, _ := getBody(t, "http://"+a.Addr()+"/tasks"); code != http.StatusOK {
		t.Fatalf("/tasks without timeline = %d", code)
	}
}
