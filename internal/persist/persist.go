// Package persist is the Sense-Aid durability layer: a versioned,
// CRC-protected snapshot file plus an append-only journal of the
// mutations applied since that snapshot. The package is deliberately
// generic — it moves opaque JSON payloads to and from disk and knows
// nothing about the orchestrator's types — so internal/core can define
// the record grammar without a dependency cycle.
//
// On-disk layout inside one state directory, per named store:
//
//	<name>.snap          snapshot: header + CRC + JSON payload
//	<name>.journal.<N>   journal epoch N: length/CRC-framed JSON records
//
// Commit writes the snapshot atomically (temp file, fsync, rename) and
// rotates to a fresh journal epoch; the previous epoch's file is kept
// until the next rotation so records racing a commit are never lost
// (the caller deduplicates replayed records by sequence number). A torn
// journal tail — the expected artifact of a crash mid-append — is
// detected by the per-record CRC and truncated at the first corrupt
// record. A corrupt snapshot is not silently skipped: Load returns a
// *CorruptError and the operator decides (refuse to start, or move the
// state aside with Reset and start fresh).
package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	// snapMagic opens every snapshot file; 8 bytes.
	snapMagic = "SAIDSNP1"
	// SnapshotVersion is the current snapshot format version.
	SnapshotVersion = 1
	// MaxRecordBytes bounds one journal record. A record is one mutation
	// (a task, a device record, a dispatch) — anything bigger is corrupt
	// framing, and the bound keeps a bad length field from provoking a
	// multi-gigabyte allocation.
	MaxRecordBytes = 1 << 20
	// maxSnapshotBytes bounds the snapshot payload (sanity check only).
	maxSnapshotBytes = 1 << 30
)

// snapHeaderLen is magic(8) + version(4) + epoch(8) + crc(4).
const snapHeaderLen = 8 + 4 + 8 + 4

// CorruptError reports an unreadable state file. The server refuses to
// start on one by default; -state-recover moves the files aside instead.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("persist: %s: %s", e.Path, e.Reason)
}

// IsCorrupt reports whether err is (or wraps) a CorruptError.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// Store manages one named snapshot+journal pair inside a directory.
// Safe for concurrent use.
type Store struct {
	dir  string
	name string

	mu      sync.Mutex
	epoch   uint64
	journal *os.File
}

// Open prepares a store under dir (created if missing). No files are
// read or written until Load/Commit/Append.
func Open(dir, name string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("persist: empty state directory")
	}
	if name == "" || strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("persist: invalid store name %q", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create %s: %w", dir, err)
	}
	return &Store{dir: dir, name: name}, nil
}

// Name returns the store's name within its directory.
func (s *Store) Name() string { return s.name }

func (s *Store) snapPath() string { return filepath.Join(s.dir, s.name+".snap") }

func (s *Store) journalPath(epoch uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.journal.%d", s.name, epoch))
}

// journalEpochs lists existing journal files for this store, ascending.
func (s *Store) journalEpochs() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	prefix := s.name + ".journal."
	var epochs []uint64
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		n, perr := strconv.ParseUint(strings.TrimPrefix(e.Name(), prefix), 10, 64)
		if perr != nil {
			continue // foreign file; not ours to touch
		}
		epochs = append(epochs, n)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

// LoadResult is what Load recovered from disk.
type LoadResult struct {
	// Snapshot is the last committed snapshot payload; nil if none.
	Snapshot json.RawMessage
	// Records are the journal records that survived CRC checking, in
	// file-epoch then append order. The caller filters by its own
	// sequence numbers (records may predate the snapshot or, across a
	// crashed rotation, duplicate each other).
	Records []json.RawMessage
	// TruncatedBytes counts journal bytes discarded at the first corrupt
	// record (the torn tail of a crash mid-append).
	TruncatedBytes int64
	// HadState reports whether any prior state existed on disk at all —
	// the restart-vs-first-boot distinction.
	HadState bool
}

// Load reads the snapshot and every journal file. A corrupt snapshot
// returns a *CorruptError; a corrupt journal record truncates the replay
// stream at that point (everything after the first bad record is
// dropped, including later files — a gap in history is worse than a
// lost tail).
func (s *Store) Load() (*LoadResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res := &LoadResult{}
	raw, err := os.ReadFile(s.snapPath())
	switch {
	case err == nil:
		res.HadState = true
		payload, epoch, cerr := decodeSnapshot(s.snapPath(), raw)
		if cerr != nil {
			return nil, cerr
		}
		res.Snapshot = payload
		s.epoch = epoch
	case os.IsNotExist(err):
		// fresh start
	default:
		return nil, fmt.Errorf("persist: read snapshot: %w", err)
	}

	epochs, err := s.journalEpochs()
	if err != nil {
		return nil, fmt.Errorf("persist: scan journals: %w", err)
	}
	for _, e := range epochs {
		if e > s.epoch {
			s.epoch = e
		}
		raw, err := os.ReadFile(s.journalPath(e))
		if err != nil {
			return nil, fmt.Errorf("persist: read journal: %w", err)
		}
		if len(raw) > 0 {
			res.HadState = true
		}
		recs, truncated := decodeJournal(raw)
		res.Records = append(res.Records, recs...)
		res.TruncatedBytes += truncated
		if truncated > 0 {
			break
		}
	}
	return res, nil
}

// Commit atomically writes a new snapshot and rotates the journal: the
// payload goes to a temp file, is fsynced, and renamed over the old
// snapshot; a fresh journal epoch is opened and epochs older than the
// previous one are pruned (the immediately-previous epoch is kept so
// appends racing this commit survive until the next one). Returns the
// snapshot size in bytes.
func (s *Store) Commit(payload any) (int64, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return 0, fmt.Errorf("persist: encode snapshot: %w", err)
	}
	return s.CommitRaw(raw)
}

// CommitRaw is Commit for a payload that is already JSON — the standby
// side of journal shipping, which must write the primary's exact bytes
// so a later recovery on the replicated files sees an identical state.
func (s *Store) CommitRaw(raw json.RawMessage) (int64, error) {
	if !json.Valid(raw) {
		return 0, fmt.Errorf("persist: snapshot payload is not valid JSON")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.epoch + 1

	buf := make([]byte, snapHeaderLen+len(raw))
	copy(buf, snapMagic)
	binary.BigEndian.PutUint32(buf[8:], SnapshotVersion)
	binary.BigEndian.PutUint64(buf[12:], next)
	binary.BigEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(raw))
	copy(buf[snapHeaderLen:], raw)

	tmp := s.snapPath() + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, s.snapPath()); err != nil {
		return 0, fmt.Errorf("persist: rename snapshot: %w", err)
	}
	syncDir(s.dir)

	j, err := os.OpenFile(s.journalPath(next), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, fmt.Errorf("persist: open journal: %w", err)
	}
	if s.journal != nil {
		_ = s.journal.Close()
	}
	prev := s.epoch
	s.journal = j
	s.epoch = next

	// Prune journals older than the previous epoch; its records are
	// already inside the snapshot just written, and keeping one old epoch
	// covers appends that raced the rotation.
	epochs, err := s.journalEpochs()
	if err == nil {
		for _, e := range epochs {
			if e < prev {
				_ = os.Remove(s.journalPath(e))
			}
		}
	}
	return int64(len(buf)), nil
}

// Append frames one record (length, CRC32, JSON payload) onto the
// current journal epoch in a single write. Commit must have run first
// in this process — the journal always belongs to the epoch of the
// snapshot it extends.
func (s *Store) Append(payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("persist: encode record: %w", err)
	}
	return s.AppendRaw(raw)
}

// AppendRaw is Append for a record that is already JSON (a shipped
// journal record, written byte-for-byte as the primary journaled it).
func (s *Store) AppendRaw(raw json.RawMessage) error {
	if !json.Valid(raw) {
		return fmt.Errorf("persist: record is not valid JSON")
	}
	if len(raw) > MaxRecordBytes {
		return fmt.Errorf("persist: record of %d bytes exceeds limit", len(raw))
	}
	buf := make([]byte, 8+len(raw))
	binary.BigEndian.PutUint32(buf, uint32(len(raw)))
	binary.BigEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(raw))
	copy(buf[8:], raw)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return fmt.Errorf("persist: no journal open (Commit first)")
	}
	if _, err := s.journal.Write(buf); err != nil {
		return fmt.Errorf("persist: append: %w", err)
	}
	return nil
}

// Epoch reports the journal epoch currently open (0 before the first
// Load/Commit). A replica includes it in its hello so an operator can
// see how far behind a standby's shipped state is.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Sync flushes the journal to stable storage (graceful drain; routine
// appends rely on the kernel page cache, which survives a process kill).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	return s.journal.Sync()
}

// Close releases the journal file handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// Reset moves every state file aside (suffix ".corrupt", replacing any
// previous set-aside) so the next Load starts fresh. This is the
// -state-recover path: the damaged files are preserved for post-mortem
// instead of deleted.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil {
		_ = s.journal.Close()
		s.journal = nil
	}
	aside := func(path string) error {
		err := os.Rename(path, path+".corrupt")
		if err != nil && !os.IsNotExist(err) {
			return err
		}
		return nil
	}
	if err := aside(s.snapPath()); err != nil {
		return fmt.Errorf("persist: reset: %w", err)
	}
	epochs, err := s.journalEpochs()
	if err != nil {
		return fmt.Errorf("persist: reset: %w", err)
	}
	for _, e := range epochs {
		if err := aside(s.journalPath(e)); err != nil {
			return fmt.Errorf("persist: reset: %w", err)
		}
	}
	return nil
}

// decodeSnapshot validates a snapshot file image and returns its payload
// and epoch. Every failure is a *CorruptError naming the file.
func decodeSnapshot(path string, raw []byte) (json.RawMessage, uint64, *CorruptError) {
	corrupt := func(reason string) (json.RawMessage, uint64, *CorruptError) {
		return nil, 0, &CorruptError{Path: path, Reason: reason}
	}
	if len(raw) == 0 {
		return corrupt("zero-length snapshot")
	}
	if len(raw) < snapHeaderLen {
		return corrupt(fmt.Sprintf("truncated header (%d bytes)", len(raw)))
	}
	if string(raw[:8]) != snapMagic {
		return corrupt("bad magic (not a Sense-Aid snapshot)")
	}
	if v := binary.BigEndian.Uint32(raw[8:]); v != SnapshotVersion {
		return corrupt(fmt.Sprintf("unsupported snapshot version %d (want %d)", v, SnapshotVersion))
	}
	epoch := binary.BigEndian.Uint64(raw[12:])
	payload := raw[snapHeaderLen:]
	if len(payload) > maxSnapshotBytes {
		return corrupt("snapshot payload exceeds size limit")
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(raw[20:]) {
		return corrupt("snapshot CRC mismatch")
	}
	if !json.Valid(payload) {
		return corrupt("snapshot payload is not valid JSON")
	}
	return json.RawMessage(payload), epoch, nil
}

// decodeJournal walks one journal file image, returning the CRC-valid
// record prefix and how many bytes were discarded at the first corrupt
// or torn record.
func decodeJournal(raw []byte) (recs []json.RawMessage, truncated int64) {
	off := 0
	for off < len(raw) {
		rest := len(raw) - off
		if rest < 8 {
			return recs, int64(rest)
		}
		n := int(binary.BigEndian.Uint32(raw[off:]))
		if n <= 0 || n > MaxRecordBytes || rest-8 < n {
			return recs, int64(rest)
		}
		payload := raw[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(raw[off+4:]) {
			return recs, int64(rest)
		}
		if !json.Valid(payload) {
			return recs, int64(rest)
		}
		recs = append(recs, json.RawMessage(payload))
		off += 8 + n
	}
	return recs, 0
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: create %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: close %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
// Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
