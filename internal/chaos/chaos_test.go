package chaos

import (
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Every scenario must finish with zero invariant violations; a failure
// prints the report (which carries the scenario seed) so the run
// reproduces from one integer.

func runClean(t *testing.T, sc Scenario) *Report {
	t.Helper()
	rep, err := Run(sc)
	if err != nil {
		t.Fatalf("%s (seed %d): %v", sc.Name, sc.Seed, err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("%s (seed %d): %d invariant violations:\n%s",
			sc.Name, sc.Seed, len(rep.Violations), strings.Join(rep.Violations, "\n"))
	}
	if rep.Selections == 0 {
		t.Fatalf("%s (seed %d): soak dispatched nothing; scenario is vacuous", sc.Name, sc.Seed)
	}
	if rep.Deliveries == 0 {
		t.Fatalf("%s (seed %d): soak delivered nothing", sc.Name, sc.Seed)
	}
	t.Logf("%s (seed %d): %d devices, %d ticks, %d selections, %d deliveries, %d rejected, %d dark, %d recoveries, p99 %v",
		sc.Name, sc.Seed, rep.Devices, rep.Ticks, rep.Selections, rep.Deliveries,
		rep.Rejected, rep.DarkReports, rep.Recoveries, rep.DispatchP99)
	return rep
}

func TestTowerOutageCampaign(t *testing.T) {
	rep := runClean(t, TowerOutageScenario(11, 600))
	if rep.DarkReports == 0 {
		t.Fatal("tower outages opened no coverage holes; the fault wave was vacuous")
	}
}

func TestPrimaryCrashCampaign(t *testing.T) {
	rep := runClean(t, CrashScenario(12, 500))
	if rep.Recoveries != 2 {
		t.Fatalf("survived %d recoveries, want 2", rep.Recoveries)
	}
}

func TestByzantineFloodCampaign(t *testing.T) {
	rep := runClean(t, ByzantineScenario(13, 400))
	if rep.Rejected == 0 {
		t.Fatal("a fleet with 15 percent liars produced no rejected uploads")
	}
}

func TestFlashCrowdCampaign(t *testing.T) {
	runClean(t, FlashCrowdScenario(14, 600))
}

// TestCityWideCampaign is the kitchen sink at test scale: outages,
// primary SIGKILLs, byzantine and clock-skewed reporters, a flash
// crowd, and CAS storms in one seeded run.
func TestCityWideCampaign(t *testing.T) {
	devices := 2000
	if testing.Short() {
		devices = 800
	}
	rep := runClean(t, CityWideScenario(15, devices))
	if rep.Recoveries != 2 {
		t.Fatalf("survived %d recoveries, want 2", rep.Recoveries)
	}
	if rep.Rejected == 0 {
		t.Fatal("no byzantine or skewed upload was ever rejected")
	}
}

// TestSeedReproducesVirtualOutcome re-runs a scenario with its seed and
// requires the virtual-time outcome (selections, deliveries, dark
// reports) to repeat exactly — the property that makes a printed seed
// an actual repro.
func TestSeedReproducesVirtualOutcome(t *testing.T) {
	a := runClean(t, TowerOutageScenario(77, 300))
	b := runClean(t, TowerOutageScenario(77, 300))
	if a.Selections != b.Selections || a.Deliveries != b.Deliveries ||
		a.Rejected != b.Rejected || a.DarkReports != b.DarkReports {
		t.Fatalf("seed 77 diverged across runs:\n%+v\n%+v", a, b)
	}
}

// cityBenchRecord is the BENCH_city.json schema.
type cityBenchRecord struct {
	Scenario           string  `json:"scenario"`
	Seed               int64   `json:"seed"`
	Devices            int     `json:"devices"`
	Ticks              int     `json:"ticks"`
	Selections         int     `json:"selections"`
	Deliveries         int     `json:"deliveries"`
	Rejected           int     `json:"rejected"`
	Recoveries         int     `json:"recoveries"`
	SelectionsPerSec   float64 `json:"selections_per_sec"`
	DispatchP99Seconds float64 `json:"dispatch_p99_seconds"`
	WallSeconds        float64 `json:"wall_seconds"`
	Violations         int     `json:"violations"`
}

// TestRecordCityBench runs the city-wide chaos soak at scale (default
// 100k simulated devices; SENSEAID_CHAOS_DEVICES overrides), requires
// zero invariant violations, and writes BENCH_city.json with the
// steady-state selections/sec and dispatch p99. Gated on
// SENSEAID_BENCH_OUT (ci.sh sets it).
func TestRecordCityBench(t *testing.T) {
	out := os.Getenv("SENSEAID_BENCH_OUT")
	if out == "" {
		t.Skip("SENSEAID_BENCH_OUT not set; benchmark recording runs from ci.sh")
	}
	devices := 100_000
	if v := os.Getenv("SENSEAID_CHAOS_DEVICES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("SENSEAID_CHAOS_DEVICES=%q: not a positive integer", v)
		}
		devices = n
	}
	const seed = 1803
	sc := CityWideScenario(seed, devices)
	start := time.Now()
	rep, err := Run(sc)
	if err != nil {
		t.Fatalf("city-wide soak (seed %d): %v", seed, err)
	}
	rec := cityBenchRecord{
		Scenario:           rep.Scenario,
		Seed:               rep.Seed,
		Devices:            rep.Devices,
		Ticks:              rep.Ticks,
		Selections:         rep.Selections,
		Deliveries:         rep.Deliveries,
		Rejected:           rep.Rejected,
		Recoveries:         rep.Recoveries,
		SelectionsPerSec:   rep.SelectionsPerSec,
		DispatchP99Seconds: rep.DispatchP99Seconds,
		WallSeconds:        rep.WallSeconds,
		Violations:         len(rep.Violations),
	}
	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d devices, %d ticks in %.1fs wall: %d selections (%.1f/s), %d deliveries, %d rejected, %d recoveries, dispatch p99 %.4fs -> %s",
		rec.Devices, rec.Ticks, time.Since(start).Seconds(), rec.Selections,
		rec.SelectionsPerSec, rec.Deliveries, rec.Rejected, rec.Recoveries,
		rec.DispatchP99Seconds, out)
	if len(rep.Violations) > 0 {
		t.Fatalf("city-wide soak (seed %d): %d invariant violations:\n%s",
			seed, len(rep.Violations), strings.Join(rep.Violations, "\n"))
	}
	if rep.Selections == 0 || rep.Deliveries == 0 {
		t.Fatalf("city-wide soak (seed %d) was vacuous: %+v", seed, rec)
	}
}
