package sim

import (
	"fmt"
	"sort"
	"time"

	"senseaid/internal/core"
	"senseaid/internal/obs"
	"senseaid/internal/wire"
)

// Framework runs a set of crowdsensing tasks on a world and reports the
// energy outcome. Implementations: Periodic, PCS, SenseAid (Basic and
// Complete).
type Framework interface {
	// Name labels the framework in reports.
	Name() string
	// Run executes the tasks to completion on the world's virtual clock.
	// Tasks must have explicit Start/End windows. The world must be
	// fresh (energy meters at zero).
	Run(w *World, tasks []core.Task) (*RunResult, error)
}

// UploadStats breaks down how crowdsensing uploads went out — the
// mechanism-level numbers behind the energy results.
type UploadStats struct {
	// Piggybacked rode existing app traffic (PCS hit, or Sense-Aid data
	// sent in a tail window).
	Piggybacked int `json:"piggybacked"`
	// Forced paid a full IDLE->CONNECTED promotion.
	Forced int `json:"forced"`
	// Batched counts samples that shared an upload with other samples
	// (Experiment 3's multi-task economy).
	Batched int `json:"batched"`
}

// RunResult is the outcome of one framework run.
type RunResult struct {
	Framework string `json:"framework"`
	// TotalCrowdJ is crowdsensing energy summed across the cohort.
	TotalCrowdJ float64 `json:"total_crowd_j"`
	// PerDeviceJ maps device ID to its crowdsensing energy.
	PerDeviceJ map[string]float64 `json:"per_device_j"`
	// Participating counts devices that spent any crowdsensing energy.
	Participating int `json:"participating"`
	// Rounds is the number of sensing rounds executed across tasks.
	Rounds int `json:"rounds"`
	// AvgQualified is the mean number of qualified devices per round.
	AvgQualified float64 `json:"avg_qualified"`
	// AvgSelected is the mean number of devices actually tasked per
	// round (equals AvgQualified for Periodic/PCS; the spatial density
	// for Sense-Aid).
	AvgSelected float64 `json:"avg_selected"`
	// Readings counts measurements delivered to the application server.
	Readings int `json:"readings"`
	// Uploads details the upload mechanisms used.
	Uploads UploadStats `json:"uploads"`
	// Selections is the Sense-Aid selection log (empty for baselines).
	Selections []core.Selection `json:"selections"`
}

// uploadMeter bridges UploadStats to the live metric vocabulary: every
// increment lands both in the RunResult and on senseaid_uploads_total
// with the same path labels the networked server reports, so a simulated
// run and a live deployment expose identical series.
type uploadMeter struct {
	res      *RunResult
	tail     *obs.Counter
	promoted *obs.Counter
	batched  *obs.Counter
}

func newUploadMeter(reg *obs.Registry, res *RunResult) uploadMeter {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	path := func(p string) obs.Labels { return obs.Labels{"path": p} }
	const help = "Crowdsensing uploads by radio path."
	return uploadMeter{
		res:      res,
		tail:     reg.Counter("senseaid_uploads_total", help, path(wire.PathTail)),
		promoted: reg.Counter("senseaid_uploads_total", help, path(wire.PathPromoted)),
		batched:  reg.Counter("senseaid_uploads_total", help, path("batched")),
	}
}

// piggybacked records n uploads that rode existing traffic or a tail.
func (m uploadMeter) piggybacked(n int) {
	m.res.Uploads.Piggybacked += n
	m.tail.Add(uint64(n))
}

// forced records n uploads that paid an IDLE->CONNECTED promotion.
func (m uploadMeter) forced(n int) {
	m.res.Uploads.Forced += n
	m.promoted.Add(uint64(n))
}

// sharedBatch records n samples that shared one transfer with others.
func (m uploadMeter) sharedBatch(n int) {
	m.res.Uploads.Batched += n
	m.batched.Add(uint64(n))
}

// AvgPerParticipantJ is crowdsensing energy per participating device — the
// metric of Figures 11 and 13.
func (r *RunResult) AvgPerParticipantJ() float64 {
	if r.Participating == 0 {
		return 0
	}
	return r.TotalCrowdJ / float64(r.Participating)
}

// collect fills the energy fields of a result from the world's phones.
func (r *RunResult) collect(w *World) {
	w.Settle()
	r.PerDeviceJ = make(map[string]float64, len(w.Phones))
	r.TotalCrowdJ = 0
	r.Participating = 0
	for _, p := range w.Phones {
		e := p.CrowdsenseEnergyJ(false)
		r.PerDeviceJ[p.ID()] = e
		r.TotalCrowdJ += e
		if e > 0 {
			r.Participating++
		}
	}
}

// taskWindow returns the earliest start and latest end across tasks.
func taskWindow(tasks []core.Task) (time.Time, time.Time, error) {
	if len(tasks) == 0 {
		return time.Time{}, time.Time{}, fmt.Errorf("sim: no tasks")
	}
	start, end := tasks[0].Start, tasks[0].End
	for _, t := range tasks[1:] {
		if t.Start.Before(start) {
			start = t.Start
		}
		if t.End.After(end) {
			end = t.End
		}
	}
	if !end.After(start) {
		return time.Time{}, time.Time{}, fmt.Errorf("sim: empty task window")
	}
	return start, end, nil
}

// sortedIDs returns map keys in order, for deterministic reports.
func sortedIDs(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
