package cluster

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"senseaid/internal/wire"
)

// pipeUpstream builds an upstream over an in-memory pipe whose far end
// counts every well-formed frame it receives.
func pipeUpstream(t *testing.T, readers *sync.WaitGroup, received *int64) *upstream {
	t.Helper()
	codec, err := wire.CodecByName("json")
	if err != nil {
		t.Fatalf("CodecByName: %v", err)
	}
	c1, c2 := net.Pipe()
	sc := &sconn{
		nc:    c1,
		br:    bufio.NewReader(c1),
		codec: codec,
		co:    wire.NewCoalescer(c1, codec, wire.CoalescerConfig{WriteTimeout: 2 * time.Second}),
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		br := bufio.NewReader(c2)
		for {
			if _, err := codec.ReadFrame(br); err != nil {
				return
			}
			atomic.AddInt64(received, 1)
		}
	}()
	return &upstream{sc: sc, pending: make(map[uint64]chan wire.Envelope), dead: make(chan struct{})}
}

// TestForwardDeliversExactlyOnceAcrossUpstreamSwaps pins the relay
// teardown race: device frames racing a re-home's upstream swap (swap
// under the session lock, then close the old upstream — rehome's exact
// order) must land on exactly one upstream. Before the retry in
// forward(), a frame could hit the just-closed coalescer and land on
// NO upstream even though a live one existed; a naive same-upstream
// retry could land it twice. Run with -race.
func TestForwardDeliversExactlyOnceAcrossUpstreamSwaps(t *testing.T) {
	r := startRouter(t)
	var readers sync.WaitGroup
	var received int64

	ds := &deviceSession{r: r, deviceID: "swap-dev"}
	cur := pipeUpstream(t, &readers, &received)
	ds.mu.Lock()
	ds.up = cur
	ds.mu.Unlock()

	env, err := wire.Encode(wire.TypeStateReport, 7, wire.StateReport{})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	var delivered int64 // forwards that reported success
	stop := make(chan struct{})
	var senders sync.WaitGroup
	for i := 0; i < 4; i++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := ds.forward(env); err == nil {
					atomic.AddInt64(&delivered, 1)
				}
			}
		}()
	}

	// Hammer swaps while the senders run, mirroring rehome(): install
	// the new upstream under the lock, then close the old one.
	for i := 0; i < 200; i++ {
		next := pipeUpstream(t, &readers, &received)
		ds.mu.Lock()
		old := ds.up
		ds.up = next
		ds.mu.Unlock()
		old.close()
		cur = next
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	senders.Wait()
	cur.close()
	readers.Wait()

	got, want := atomic.LoadInt64(&received), atomic.LoadInt64(&delivered)
	if got != want {
		t.Fatalf("exactly-once violated: %d frames delivered to upstreams, %d forwards reported success", got, want)
	}
	if want == 0 {
		t.Fatal("no forward ever succeeded; the test exercised nothing")
	}
	if r.met.swapRetries.Value() == 0 {
		t.Log("note: no forward raced a swap this run (timing-dependent); the invariant still held")
	}
}
