package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"senseaid/internal/cas"
	"senseaid/internal/client"
	"senseaid/internal/core"
	"senseaid/internal/geo"
	"senseaid/internal/netserver"
	"senseaid/internal/sensors"
	"senseaid/internal/wire"
)

// Two disjoint regions ~8.5 km apart; devices and tasks land in one or
// the other by position.
var (
	westCenter = geo.Point{Lat: 40.0, Lon: -86.95}
	eastCenter = geo.Point{Lat: 40.0, Lon: -86.85}
	westRegion = core.Region{Name: "west", Area: geo.Circle{Center: westCenter, RadiusM: 3000}}
	eastRegion = core.Region{Name: "east", Area: geo.Circle{Center: eastCenter, RadiusM: 3000}}
)

func startRouter(t *testing.T) *Router {
	t.Helper()
	r, err := Listen(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("cluster.Listen: %v", err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

// startWorker boots a single-region worker and enrolls it with the
// router as the region's primary.
func startWorker(t *testing.T, r *Router, region core.Region, nodeID, stateDir string) *netserver.Server {
	t.Helper()
	s, err := netserver.Listen(netserver.Config{
		Addr:       "127.0.0.1:0",
		TickPeriod: 20 * time.Millisecond,
		Regions:    []core.Region{region},
		StateDir:   stateDir,
	})
	if err != nil {
		t.Fatalf("netserver.Listen(%s): %v", region.Name, err)
	}
	t.Cleanup(func() { _ = s.Close() })
	trunk, err := s.Enroll(r.Addr(), nodeID, "")
	if err != nil {
		t.Fatalf("Enroll(%s): %v", nodeID, err)
	}
	t.Cleanup(func() { _ = trunk.Close() })
	return s
}

// routedDevice connects a device to the ROUTER and answers every
// schedule with a barometer reading taken at its current position. The
// returned setter moves the device (the next readings carry the new
// position).
func routedDevice(t *testing.T, routerAddr, id string, pos geo.Point) (*client.Client, func(geo.Point)) {
	t.Helper()
	var mu sync.Mutex
	cur := pos
	c, err := client.Dial(client.Config{
		Addr:       routerAddr,
		DeviceID:   id,
		Position:   pos,
		BatteryPct: 90,
		Sensors:    []sensors.Type{sensors.Barometer},
	})
	if err != nil {
		t.Fatalf("client.Dial: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if err := c.Register(); err != nil {
		t.Fatalf("Register(%s): %v", id, err)
	}
	if err := c.StartSensing(func(sch wire.Schedule) {
		mu.Lock()
		where := cur
		mu.Unlock()
		reading := sensors.Reading{
			Sensor: sch.Sensor, Value: 1013.25, Unit: "hPa",
			At: time.Now(), Where: where,
		}
		go func() {
			if err := c.SendSenseData(sch.RequestID, reading); err != nil &&
				!strings.Contains(err.Error(), "closed") {
				t.Logf("SendSenseData(%s): %v", id, err)
			}
		}()
	}); err != nil {
		t.Fatalf("StartSensing(%s): %v", id, err)
	}
	return c, func(p geo.Point) {
		mu.Lock()
		cur = p
		mu.Unlock()
	}
}

func regionSpec(center geo.Point, density int, window time.Duration) wire.TaskSpec {
	now := time.Now()
	return wire.TaskSpec{
		Sensor:         sensors.Barometer,
		SamplingPeriod: 150 * time.Millisecond,
		Start:          now,
		End:            now.Add(window),
		Center:         center,
		AreaRadiusM:    2500,
		SpatialDensity: density,
	}
}

// collectingCAS dials the router and records every delivery.
func collectingCAS(t *testing.T, routerAddr string) (*cas.CAS, func() []wire.SensedData) {
	t.Helper()
	app, err := cas.Dial(routerAddr)
	if err != nil {
		t.Fatalf("cas.Dial: %v", err)
	}
	t.Cleanup(func() { _ = app.Close() })
	var mu sync.Mutex
	var got []wire.SensedData
	if err := app.ReceiveSensedData(func(sd wire.SensedData) {
		mu.Lock()
		got = append(got, sd)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	return app, func() []wire.SensedData {
		mu.Lock()
		defer mu.Unlock()
		return append([]wire.SensedData(nil), got...)
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestRouterRoutesByRegion(t *testing.T) {
	r := startRouter(t)
	startWorker(t, r, westRegion, "west-1", "")
	startWorker(t, r, eastRegion, "east-1", "")

	_, _ = routedDevice(t, r.Addr(), "dev-west", westCenter)
	_, _ = routedDevice(t, r.Addr(), "dev-east", eastCenter)

	app, deliveries := collectingCAS(t, r.Addr())

	westTask, err := app.Task(regionSpec(westCenter, 1, 700*time.Millisecond))
	if err != nil {
		t.Fatalf("west Task: %v", err)
	}
	eastTask, err := app.Task(regionSpec(eastCenter, 1, 700*time.Millisecond))
	if err != nil {
		t.Fatalf("east Task: %v", err)
	}
	if !strings.HasPrefix(westTask, "west/") || !strings.HasPrefix(eastTask, "east/") {
		t.Fatalf("task IDs %q / %q do not carry their region prefixes", westTask, eastTask)
	}

	waitFor(t, 5*time.Second, "deliveries from both regions", func() bool {
		var west, east int
		for _, sd := range deliveries() {
			switch sd.TaskID {
			case westTask:
				west++
			case eastTask:
				east++
			}
		}
		return west >= 1 && east >= 1
	})
	for _, sd := range deliveries() {
		switch sd.TaskID {
		case westTask:
			if sd.DeviceID != "dev-west" {
				t.Fatalf("west task served by %q", sd.DeviceID)
			}
		case eastTask:
			if sd.DeviceID != "dev-east" {
				t.Fatalf("east task served by %q", sd.DeviceID)
			}
		}
	}

	// Updates and deletes route by the task ID's region prefix.
	if err := app.UpdateTaskParam(wire.UpdateTask{TaskID: eastTask, SpatialDensity: 1}); err != nil {
		t.Fatalf("UpdateTaskParam across router: %v", err)
	}
	if err := app.DeleteTask(westTask); err != nil {
		t.Fatalf("DeleteTask across router: %v", err)
	}
	if err := app.DeleteTask("task-noprefix"); err == nil {
		t.Fatal("prefix-less task ID was routable")
	}
}

func TestRouterRehomesDeviceAcrossNodes(t *testing.T) {
	r := startRouter(t)
	startWorker(t, r, westRegion, "west-1", "")
	startWorker(t, r, eastRegion, "east-1", "")

	dev, moveTo := routedDevice(t, r.Addr(), "nomad", westCenter)
	app, deliveries := collectingCAS(t, r.Addr())

	// Prove the device lives in west first.
	westTask, err := app.Task(regionSpec(westCenter, 1, 500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "west delivery before the move", func() bool {
		for _, sd := range deliveries() {
			if sd.TaskID == westTask && sd.DeviceID == "nomad" {
				return true
			}
		}
		return false
	})

	// The device crosses the boundary: its state report routes it east.
	moveTo(eastCenter)
	if err := dev.ReportState(eastCenter, 85, time.Now()); err != nil {
		t.Fatalf("ReportState after crossing: %v", err)
	}
	waitFor(t, 5*time.Second, "re-home to be counted", func() bool {
		return r.met.rehomes.Value() >= 1
	})

	// An east campaign must now be served by the moved device over the
	// same client connection.
	eastTask, err := app.Task(regionSpec(eastCenter, 1, 700*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "east delivery after the move", func() bool {
		for _, sd := range deliveries() {
			if sd.TaskID == eastTask && sd.DeviceID == "nomad" {
				return true
			}
		}
		return false
	})
	if r.met.rehomeErrors.Value() != 0 {
		t.Fatalf("re-home errors: %d", r.met.rehomeErrors.Value())
	}
}

func TestRouterPromotesStandbyAndStateSurvives(t *testing.T) {
	r := startRouter(t)
	primaryDir, standbyDir := t.TempDir(), t.TempDir()

	primary, err := netserver.Listen(netserver.Config{
		Addr:       "127.0.0.1:0",
		TickPeriod: 20 * time.Millisecond,
		Regions:    []core.Region{westRegion},
		StateDir:   primaryDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	trunk, err := primary.Enroll(r.Addr(), "west-1", "")
	if err != nil {
		t.Fatal(err)
	}

	standby, err := netserver.RunStandby(netserver.StandbyConfig{
		PrimaryAddr: primary.Addr(),
		RouterAddr:  r.Addr(),
		NodeID:      "west-2",
		Region:      westRegion,
		StateDir:    standbyDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = standby.Close() })

	app, _ := collectingCAS(t, r.Addr())
	spec := regionSpec(westCenter, 1, time.Hour)
	spec.ClientTaskID = "campaign-1"
	taskID, err := app.Task(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the submission has been shipped into the standby's
	// replicated journal (its bytes carry the client task ID).
	waitFor(t, 5*time.Second, "journal shipping to reach the standby", func() bool {
		entries, err := os.ReadDir(standbyDir)
		if err != nil {
			return false
		}
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(standbyDir, e.Name()))
			if err == nil && strings.Contains(string(b), "campaign-1") {
				return true
			}
		}
		return false
	})

	// The primary dies (trunk first, as one process death would drop
	// both at once).
	_ = trunk.Close()
	_ = primary.Close()

	select {
	case <-standby.Promoted():
	case <-time.After(10 * time.Second):
		t.Fatal("standby never promoted")
	}
	if r.met.promotions.Value() != 1 {
		t.Fatalf("promotions = %d, want 1", r.met.promotions.Value())
	}

	// Boot the successor on the replicated state and enroll it; the
	// campaign must already be there: resubmitting the same client task
	// ID returns the old task instead of creating a twin.
	successor := startWorker(t, r, westRegion, "west-2", standbyDir)
	if rec := successor.Recovery(); rec.Replayed == 0 && !strings.Contains(rec.Outcome, "snapshot") {
		t.Logf("successor recovery: %+v", rec)
	}
	app2, _ := collectingCAS(t, r.Addr())
	gotID, err := app2.Task(spec) // byte-identical resubmit → idempotent
	if err != nil {
		t.Fatalf("resubmit after failover: %v", err)
	}
	if gotID != taskID {
		t.Fatalf("failover lost the campaign: resubmit returned %q, originally %q", gotID, taskID)
	}
}
