package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"senseaid/internal/geo"
	"senseaid/internal/power"
	"senseaid/internal/sensors"
)

func TestRoundTripFrame(t *testing.T) {
	env, err := Encode(TypeRegister, 7, Register{
		DeviceID:   "abc123",
		Position:   geo.CSDepartment,
		BatteryPct: 82.5,
		Sensors:    []sensors.Type{sensors.Barometer},
		Budget:     power.DefaultBudget(),
	})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if got.Type != TypeRegister || got.Seq != 7 {
		t.Fatalf("envelope = %+v", got)
	}
	var reg Register
	if err := Decode(got, &reg); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if reg.DeviceID != "abc123" || reg.BatteryPct != 82.5 || len(reg.Sensors) != 1 {
		t.Fatalf("register = %+v", reg)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		env, err := Encode(TypeStateReport, uint64(i), StateReport{BatteryPct: float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(&buf, env); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		env, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if env.Seq != uint64(i) {
			t.Fatalf("frame %d has seq %d", i, env.Seq)
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("after drain: err = %v, want EOF", err)
	}
}

func TestReadFrameRejectsBadLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxMessageBytes+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversized frame accepted")
	}
	binary.BigEndian.PutUint32(hdr[:], 0)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	env, err := Encode(TypeAck, 1, Ack{})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestReadFrameRejectsMissingType(t *testing.T) {
	body := []byte(`{"seq":1}`)
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("typeless envelope accepted")
	}
}

func TestDecodeEmptyPayload(t *testing.T) {
	var reg Register
	if err := Decode(Envelope{Type: TypeRegister}, &reg); err == nil {
		t.Fatal("empty payload decoded")
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	due := time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)
	env, err := Encode(TypeSchedule, 3, Schedule{
		RequestID: "task-1#4",
		TaskID:    "task-1",
		Sensor:    sensors.Barometer,
		Due:       due,
		Deadline:  due.Add(10 * time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var sch Schedule
	if err := Decode(got, &sch); err != nil {
		t.Fatal(err)
	}
	if sch.RequestID != "task-1#4" || !sch.Due.Equal(due) || sch.Sensor != sensors.Barometer {
		t.Fatalf("schedule = %+v", sch)
	}
}

// Property: any payload bytes that survive Encode survive the full frame
// round trip unchanged.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seq uint64, msg string) bool {
		env, err := Encode(TypeError, seq, Error{Message: msg})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, env); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		var e Error
		if err := Decode(got, &e); err != nil {
			return false
		}
		return got.Seq == seq && e.Message == msg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
