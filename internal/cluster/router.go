package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"senseaid/internal/obs"
	"senseaid/internal/wire"
)

// Config parameterises a router.
type Config struct {
	// Addr is the TCP listen address clients and nodes dial.
	Addr string
	// MaxWireVersion caps the codec granted to client connections (node
	// trunks always get binary). 0 means binary.
	MaxWireVersion int
	// HandshakeTimeout bounds the hello exchange. Default 10s.
	HandshakeTimeout time.Duration
	// WriteTimeout bounds every frame write. Default 5s.
	WriteTimeout time.Duration
	// CallTimeout bounds one trunk RPC (export, import, promote).
	// Default 10s.
	CallTimeout time.Duration
	// PingInterval paces trunk health checks; PingTimeout fails one.
	// Defaults 1s / 2s. A SIGKILLed node usually announces itself faster
	// through TCP (EOF on the trunk), so the ping is the backstop for
	// silent deaths (cable pulls, frozen processes).
	PingInterval, PingTimeout time.Duration
	// CoalesceInterval batches relayed pushes per connection, mirroring
	// the worker-side setting. 0 disables coalescing.
	CoalesceInterval time.Duration
	// Logger receives operational messages; nil discards them.
	Logger *log.Logger
	// LogLevel filters Logger output.
	LogLevel obs.Level
	// Metrics receives the router series; nil uses a private registry.
	Metrics *obs.Registry
}

// routerMetrics is the router tier's metric vocabulary.
type routerMetrics struct {
	reg          *obs.Registry
	nodes        *obs.Gauge
	sessDevice   *obs.Gauge
	sessCAS      *obs.Gauge
	rehomes      *obs.Counter
	rehomeErrors *obs.Counter
	promotions   *obs.Counter
	relayErrors  *obs.Counter
	swapRetries  *obs.Counter
	pingFailures *obs.Counter
	noRoute      *obs.Counter
}

func newRouterMetrics(reg *obs.Registry) *routerMetrics {
	role := func(r string) obs.Labels { return obs.Labels{"role": r} }
	return &routerMetrics{
		reg: reg,
		nodes: reg.Gauge("senseaid_router_nodes",
			"Nodes currently enrolled with the router.", nil),
		sessDevice: reg.Gauge("senseaid_router_sessions",
			"Relayed client sessions by role.", role("device")),
		sessCAS: reg.Gauge("senseaid_router_sessions",
			"Relayed client sessions by role.", role("cas")),
		rehomes: reg.Counter("senseaid_router_rehomes_total",
			"Devices moved between region nodes after crossing a boundary.", nil),
		rehomeErrors: reg.Counter("senseaid_router_rehome_errors_total",
			"Cross-node re-homes that failed (export, import, or re-attach).", nil),
		promotions: reg.Counter("senseaid_router_promotions_total",
			"Standby nodes promoted after a primary's death.", nil),
		relayErrors: reg.Counter("senseaid_router_relay_errors_total",
			"Frames dropped because relaying them failed.", nil),
		swapRetries: reg.Counter("senseaid_router_swap_retries_total",
			"Client frames re-sent on a session's fresh upstream after a send raced a re-home or promotion swap.", nil),
		pingFailures: reg.Counter("senseaid_router_ping_failures_total",
			"Trunk health checks that failed or timed out.", nil),
		noRoute: reg.Counter("senseaid_router_unroutable_total",
			"Client requests refused because no enrolled region could serve them.", nil),
	}
}

// Router is a running router tier.
type Router struct {
	cfg Config
	ln  net.Listener
	log *obs.Logger
	met *routerMetrics
	reg *registry

	connMu sync.Mutex
	conns  map[net.Conn]bool

	done    chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup
}

// Listen starts a router on cfg.Addr.
func Listen(cfg Config) (*Router, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxWireVersion == 0 {
		cfg.MaxWireVersion = wire.ProtocolVersionBinary
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	if cfg.PingInterval <= 0 {
		cfg.PingInterval = time.Second
	}
	if cfg.PingTimeout <= 0 {
		cfg.PingTimeout = 2 * time.Second
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", cfg.Addr, err)
	}
	r := &Router{
		cfg:   cfg,
		ln:    ln,
		log:   obs.NewLogger(cfg.Logger, cfg.LogLevel),
		met:   newRouterMetrics(reg),
		reg:   newRegistry(),
		conns: make(map[net.Conn]bool),
		done:  make(chan struct{}),
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the bound listen address.
func (r *Router) Addr() string { return r.ln.Addr().String() }

// Metrics returns the registry carrying the router's series.
func (r *Router) Metrics() *obs.Registry { return r.met.reg }

// Close shuts the router down and waits for its goroutines. Worker
// nodes keep running — the router is stateless glue.
func (r *Router) Close() error {
	var err error
	r.closeMu.Do(func() {
		close(r.done)
		err = r.ln.Close()
		r.connMu.Lock()
		for nc := range r.conns {
			_ = nc.Close()
		}
		r.connMu.Unlock()
		r.wg.Wait()
	})
	return err
}

func (r *Router) acceptLoop() {
	defer r.wg.Done()
	for {
		nc, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			r.log.Errorf("accept: %v", err)
			continue
		}
		r.track(nc)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer r.untrack(nc)
			defer func() { _ = nc.Close() }()
			r.serveConn(nc)
		}()
	}
}

func (r *Router) track(nc net.Conn) {
	r.connMu.Lock()
	r.conns[nc] = true
	r.connMu.Unlock()
}

func (r *Router) untrack(nc net.Conn) {
	r.connMu.Lock()
	delete(r.conns, nc)
	r.connMu.Unlock()
}

// serveConn terminates one inbound connection: hello, codec
// negotiation (the same rules as the worker's listener), then a role
// switch into trunk serving or session relaying.
func (r *Router) serveConn(nc net.Conn) {
	if r.cfg.HandshakeTimeout > 0 {
		_ = nc.SetReadDeadline(time.Now().Add(r.cfg.HandshakeTimeout))
	}
	br := bufio.NewReaderSize(nc, 16<<10)
	env, err := wire.ReadFrame(br)
	if err != nil {
		return
	}
	_ = nc.SetReadDeadline(time.Time{})
	if env.Type != wire.TypeHello {
		return
	}
	var hello wire.Hello
	if err := wire.Decode(env, &hello); err != nil {
		return
	}
	if _, known := wire.CodecForVersion(hello.Version); !known {
		r.sendRawErr(nc, env.Seq, fmt.Errorf("cluster: protocol version %d unsupported", hello.Version))
		return
	}
	negotiated := hello.Version
	if negotiated > r.cfg.MaxWireVersion {
		negotiated = wire.ProtocolVersion
	}
	ack := wire.Ack{}
	if negotiated != wire.ProtocolVersion {
		ack.Version = negotiated
	}
	ackEnv, err := wire.Encode(wire.TypeAck, env.Seq, ack)
	if err != nil {
		return
	}
	_ = nc.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
	if err := wire.WriteFrame(nc, ackEnv); err != nil {
		return
	}
	_ = nc.SetWriteDeadline(time.Time{})
	codec, _ := wire.CodecForVersion(negotiated)
	sc := &sconn{
		nc:    nc,
		br:    br,
		codec: codec,
		co: wire.NewCoalescer(nc, codec, wire.CoalescerConfig{
			Interval:     r.cfg.CoalesceInterval,
			WriteTimeout: r.cfg.WriteTimeout,
		}),
	}
	defer sc.co.Close()

	switch hello.Role {
	case wire.RoleNode:
		r.serveTrunk(sc)
	case wire.RoleDevice:
		r.met.sessDevice.Add(1)
		r.serveDeviceSession(sc)
		r.met.sessDevice.Add(-1)
	case wire.RoleCAS:
		r.met.sessCAS.Add(1)
		r.serveCASSession(sc)
		r.met.sessCAS.Add(-1)
	default:
		sc.sendErr(env.Seq, fmt.Errorf("cluster: unknown role %q", hello.Role))
	}
}

// sendRawErr writes a pre-negotiation v1 error frame.
func (r *Router) sendRawErr(nc net.Conn, seq uint64, err error) {
	env, eerr := wire.Encode(wire.TypeError, seq, wire.Error{Message: err.Error()})
	if eerr != nil {
		return
	}
	_ = nc.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
	_ = wire.WriteFrame(nc, env)
}

// serveTrunk enrolls one node and serves its trunk until the
// connection dies, then runs any promotions its death triggers.
func (r *Router) serveTrunk(sc *sconn) {
	env, err := sc.codec.ReadFrame(sc.br)
	if err != nil {
		return
	}
	if env.Type != wire.TypeNodeHello {
		sc.sendErr(env.Seq, fmt.Errorf("cluster: expected node_hello, got %s", env.Type))
		return
	}
	var nh wire.NodeHello
	if err := wire.Decode(env, &nh); err != nil {
		sc.sendErr(env.Seq, err)
		return
	}
	t := newTrunk(sc, nh)
	if _, err := r.reg.enroll(nh, t); err != nil {
		sc.sendErr(env.Seq, err)
		return
	}
	r.met.nodes.Set(float64(r.reg.nodeCount()))
	if err := sc.send(mustEncode(sc.codec, wire.TypeAck, env.Seq, wire.Ack{Ref: nh.NodeID}), true); err != nil {
		return
	}
	r.log.Infof("node %s enrolled: region %s, role %s, addr %s",
		nh.NodeID, nh.Region, nh.NodeRole, nh.Addr)

	pingDone := make(chan struct{})
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.pingTrunk(t, pingDone)
	}()

	t.readLoop()
	close(pingDone)
	promotions := r.reg.drop(t)
	r.met.nodes.Set(float64(r.reg.nodeCount()))
	r.log.Infof("node %s (region %s, role %s) lost", nh.NodeID, nh.Region, nh.NodeRole)
	for _, p := range promotions {
		r.promote(p)
	}
}

// pingTrunk health-checks one trunk until it dies. A failed or
// timed-out ping closes the trunk's connection, which unblocks its
// readLoop and triggers the same drop/promote path as an EOF.
func (r *Router) pingTrunk(t *trunk, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-r.done:
			return
		case <-time.After(r.cfg.PingInterval):
		}
		if _, err := t.call(wire.TypeNodePing, struct{}{}, r.cfg.PingTimeout); err != nil {
			select {
			case <-stop:
				return
			default:
			}
			r.met.pingFailures.Inc()
			r.log.Errorf("node %s failed health check: %v", t.hello.NodeID, err)
			t.close()
			return
		}
	}
}

// promote tells a standby to take its region over. The standby closes
// its replication stores, boots a server on the replicated state, and
// enrolls again as the region's primary — promotion here is only the
// signal; the new enrollment is what restores routing.
func (r *Router) promote(p promotion) {
	r.met.promotions.Inc()
	r.log.Infof("region %s: promoting standby %s", p.region, p.standby.id)
	if _, err := p.standby.trunk.call(wire.TypePromote, wire.Promote{Region: p.region}, r.cfg.CallTimeout); err != nil {
		r.log.Errorf("promote %s: %v", p.standby.id, err)
	}
}

// mustEncode wraps codec.Encode for payloads the router itself built —
// an encode failure on our own structs is a programming error, but the
// relay must not panic, so it degrades to an empty envelope the sender
// drops.
func mustEncode(c wire.Codec, t wire.MsgType, seq uint64, payload interface{}) wire.Envelope {
	env, err := c.Encode(t, seq, payload)
	if err != nil {
		return wire.Envelope{Type: t, Seq: seq}
	}
	return env
}
