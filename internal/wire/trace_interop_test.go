package wire

import (
	"bytes"
	"encoding/json"
	"testing"

	"senseaid/internal/sensors"
)

// oldSchedule is the pre-trace frame shape, as an old peer would encode
// and decode it: no trace_id/span_id fields at all.
type oldSchedule struct {
	RequestID string       `json:"request_id"`
	TaskID    string       `json:"task_id"`
	Sensor    sensors.Type `json:"sensor"`
}

// TestTraceFieldInterop pins the compatibility contract for the trace
// context fields: old frames decode into the new structs with empty
// context, and new frames decode on old peers with the context silently
// dropped — in both directions through the real frame codec.
func TestTraceFieldInterop(t *testing.T) {
	const (
		traceID = "00112233445566778899aabbccddeeff"
		spanID  = "0123456789abcdef"
	)

	// Old peer -> new decoder: no trace fields means empty context.
	env, err := Encode(TypeSchedule, 1, oldSchedule{RequestID: "task-1#0", TaskID: "task-1", Sensor: sensors.Barometer})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var sch Schedule
	if err := Decode(got, &sch); err != nil {
		t.Fatalf("new decoder rejected old frame: %v", err)
	}
	if sch.RequestID != "task-1#0" || sch.TraceID != "" || sch.SpanID != "" {
		t.Fatalf("old frame decoded as %+v", sch)
	}

	// New peer -> old decoder: trace fields are unknown keys, ignored.
	env, err = Encode(TypeSchedule, 2, Schedule{
		RequestID: "task-1#0", TaskID: "task-1", Sensor: sensors.Barometer,
		TraceID: traceID, SpanID: spanID,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var old oldSchedule
	if err := Decode(got, &old); err != nil {
		t.Fatalf("old decoder rejected traced frame: %v", err)
	}
	if old.RequestID != "task-1#0" || old.TaskID != "task-1" {
		t.Fatalf("traced frame decoded as %+v", old)
	}

	// New peer -> new decoder: context survives the round trip on every
	// frame that carries it.
	roundTrip := func(typ MsgType, in, out interface{}) {
		t.Helper()
		env, err := Encode(typ, 3, in)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := WriteFrame(&b, env); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&b)
		if err != nil {
			t.Fatal(err)
		}
		if err := Decode(got, out); err != nil {
			t.Fatal(err)
		}
	}
	var sch2 Schedule
	roundTrip(TypeSchedule, Schedule{RequestID: "r", TraceID: traceID, SpanID: spanID}, &sch2)
	if sch2.TraceID != traceID || sch2.SpanID != spanID {
		t.Fatalf("Schedule context lost: %+v", sch2)
	}
	var sd SenseData
	roundTrip(TypeSenseData, SenseData{RequestID: "r", TraceID: traceID, SpanID: spanID}, &sd)
	if sd.TraceID != traceID || sd.SpanID != spanID {
		t.Fatalf("SenseData context lost: %+v", sd)
	}
	var spec TaskSpec
	roundTrip(TypeSubmitTask, TaskSpec{Sensor: sensors.Barometer, TraceID: traceID, SpanID: spanID}, &spec)
	if spec.TraceID != traceID || spec.SpanID != spanID {
		t.Fatalf("TaskSpec context lost: %+v", spec)
	}
	var out SensedData
	roundTrip(TypeSensedData, SensedData{TaskID: "t", TraceID: traceID, SpanID: spanID}, &out)
	if out.TraceID != traceID || out.SpanID != spanID {
		t.Fatalf("SensedData context lost: %+v", out)
	}

	// Empty context never appears on the wire (omitempty keeps old
	// parsers that are strict about unknown keys happy and frames small).
	env, err = Encode(TypeSchedule, 4, Schedule{RequestID: "r"})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(env.Payload, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["trace_id"]; ok {
		t.Fatal("empty trace_id serialized")
	}
	if _, ok := raw["span_id"]; ok {
		t.Fatal("empty span_id serialized")
	}
}
