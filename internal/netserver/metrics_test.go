package netserver

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"senseaid/internal/cas"
	"senseaid/internal/geo"
	"senseaid/internal/obs"
	"senseaid/internal/sensors"
	"senseaid/internal/wire"
)

// metricValue digs a counter/gauge value or histogram count out of a
// registry snapshot; -1 means the series does not exist.
func metricValue(reg *obs.Registry, name string, labels obs.Labels) float64 {
	for _, fam := range reg.Snapshot() {
		if fam.Name != name {
			continue
		}
	series:
		for _, s := range fam.Series {
			for k, v := range labels {
				if s.Labels[k] != v {
					continue series
				}
			}
			if s.Value != nil {
				return *s.Value
			}
			if s.Count != nil {
				return float64(*s.Count)
			}
		}
	}
	return -1
}

// TestMetricsEndToEnd drives a client/CAS round trip through a server
// wired to an injected registry and asserts the full serving path shows
// up: connections, per-RPC latency series, upload paths, and that the
// exposition output stays parseable while traffic flows.
func TestMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Listen(Config{
		Addr:       "127.0.0.1:0",
		TickPeriod: 20 * time.Millisecond,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer func() { _ = s.Close() }()
	if s.Metrics() != reg {
		t.Fatal("server did not adopt the injected registry")
	}

	dev := autoDevice(t, s.Addr(), "device-m1")
	_ = dev

	app, err := cas.Dial(s.Addr())
	if err != nil {
		t.Fatalf("cas.Dial: %v", err)
	}
	defer func() { _ = app.Close() }()

	var mu sync.Mutex
	n := 0
	if err := app.ReceiveSensedData(func(wire.SensedData) {
		mu.Lock()
		n++
		mu.Unlock()
	}); err != nil {
		t.Fatalf("ReceiveSensedData: %v", err)
	}
	if _, err := app.Task(barometerSpec(1)); err != nil {
		t.Fatalf("Task: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		got := n
		mu.Unlock()
		if got >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d readings after 5s", got)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if v := metricValue(reg, "senseaid_net_connections", obs.Labels{"role": "device"}); v != 1 {
		t.Errorf("device connections gauge = %v, want 1", v)
	}
	if v := metricValue(reg, "senseaid_net_connections", obs.Labels{"role": "cas"}); v != 1 {
		t.Errorf("cas connections gauge = %v, want 1", v)
	}
	if v := metricValue(reg, "senseaid_rpc_seconds", obs.Labels{"role": "device", "type": string(wire.TypeSenseData)}); v < 2 {
		t.Errorf("send_sense_data RPC count = %v, want >= 2", v)
	}
	if v := metricValue(reg, "senseaid_rpc_seconds", obs.Labels{"role": "cas", "type": string(wire.TypeSubmitTask)}); v != 1 {
		t.Errorf("task RPC count = %v, want 1", v)
	}
	// autoDevice uses SendSenseData without a path, so the uploads land
	// on the "unknown" series — the server must still count every one.
	total := metricValue(reg, "senseaid_uploads_total", obs.Labels{"path": "unknown"})
	if total < 2 {
		t.Errorf("uploads_total{path=unknown} = %v, want >= 2", total)
	}
	if v := metricValue(reg, "senseaid_requests_total", obs.Labels{"outcome": "satisfied"}); v < 1 {
		t.Errorf("core satisfied counter = %v, want >= 1 (shared registry)", v)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if err := obs.CheckText(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("live exposition does not parse: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"senseaid_rpc_seconds_bucket", "senseaid_scheduling_rounds_total", "senseaid_net_connections"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}

	st := s.Status()
	if st.DeviceConns != 1 || st.LiveTasks != 1 {
		t.Errorf("Status = %+v, want 1 device conn and 1 live task", st)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("UptimeSeconds = %v, want > 0", st.UptimeSeconds)
	}
}

// TestRPCErrorCounting asserts handler failures reach the error series
// with the offending message type, and off-protocol types are folded into
// "unknown" rather than minting new label values.
func TestRPCErrorCounting(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Listen(Config{
		Addr:       "127.0.0.1:0",
		TickPeriod: 20 * time.Millisecond,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer func() { _ = s.Close() }()

	dev := autoDevice(t, s.Addr(), "device-m2")
	// An upload for a request that was never scheduled is rejected.
	reading := sensors.Reading{
		Sensor: sensors.Barometer, Value: 1013.25, Unit: "hPa",
		At: time.Now(), Where: geo.CSDepartment,
	}
	if err := dev.SendSenseData("req-never-scheduled", reading); err == nil {
		t.Fatal("unsolicited upload accepted")
	}
	if v := metricValue(reg, "senseaid_rpc_errors_total", obs.Labels{"role": "device", "type": string(wire.TypeSenseData)}); v != 1 {
		t.Errorf("rpc_errors_total{type=send_sense_data} = %v, want 1", v)
	}
	if v := metricValue(reg, "senseaid_readings_total", obs.Labels{"outcome": "rejected"}); v != 1 {
		t.Errorf("readings rejected counter = %v, want 1", v)
	}
}
